"""Wall-clock watchdog around the layout solve.

An emergency re-solve (a target just died; see
:mod:`repro.online.controller`) cannot afford an open-ended
optimization: every second spent solving is a second the workload runs
on a degraded layout — or errors against a dead device.  The watchdog
runs the solve under a wall-clock budget and, when a rung of the chain
blows its share of the budget (or raises), falls back to a cheaper one:

1. **portfolio** — the full requested solve (multi-start, possibly a
   parallel worker pool);
2. **partitioned** — a single-start partitioned solve
   (:func:`repro.core.partition.solve_partitioned`): decompose the
   overlap graph, solve the pieces, stitch and balance.  On large
   instances this finishes in a fraction of the monolithic time, so it
   is the natural first fallback when the portfolio rung blows its
   budget.  Skipped when the caller already asked for
   ``method="partitioned"`` (retrying the same thing is not a
   fallback);
3. **serial** — a single-start, single-process solve from the best
   available starting layout, with a tightened iteration cap;
4. **greedy** — the Section-4.2 greedy construction, evaluated inline.
   It needs no optimization loop at all and always yields a valid,
   capacity-respecting layout, so the chain cannot come back empty.

Bounded rungs run in daemon threads that are *abandoned* on timeout
(SciPy's SLSQP offers no cancellation); an abandoned rung therefore
gets a private evaluator and no shared instrumentation, so a zombie
solve can never race the caller.  The watchdog itself reports which
rung answered (``repro_watchdog_rung_total``), every timeout and error
(``repro_watchdog_timeouts_total`` / ``repro_watchdog_errors_total``),
and a ``watchdog.rung`` span per attempt on the caller's ``obs``.
"""

import threading
import time
from dataclasses import dataclass, field

from repro.core.initial import initial_layout
from repro.core.solver import SolveResult, solve
from repro.obs import ensure_obs

#: Wall-clock floor given to a bounded rung; below this the rung is
#: skipped outright rather than started with no realistic chance.
MIN_RUNG_BUDGET_S = 0.05

#: Iteration cap for the serial fallback rung (the portfolio rung keeps
#: the caller's ``max_iter``).
SERIAL_FALLBACK_MAX_ITER = 40

RUNG_PORTFOLIO = "portfolio"
RUNG_PARTITIONED = "partitioned"
RUNG_SERIAL = "serial"
RUNG_GREEDY = "greedy"


@dataclass
class WatchdogResult:
    """A solve result plus the story of how it was obtained.

    Attributes:
        result: The winning :class:`~repro.core.solver.SolveResult`.
        rung: Which rung answered (``portfolio`` / ``partitioned`` /
            ``serial`` / ``greedy``).
        degraded: True when the first rung did not answer — the layout
            is valid but weaker than an unconstrained solve would give.
        budget_s: The wall-clock budget (None = unbounded).
        elapsed_s: Total wall clock spent in the watchdog.
        attempts: ``(rung, outcome)`` pairs, outcome one of ``ok`` /
            ``timeout`` / ``error`` / ``skipped``.
    """

    result: SolveResult
    rung: str
    degraded: bool
    budget_s: float = None
    elapsed_s: float = 0.0
    attempts: list = field(default_factory=list)

    @property
    def layout(self):
        return self.result.layout


def _greedy_result(problem, started):
    """The bottom rung: greedy construction, no optimization loop."""
    layout = initial_layout(problem)
    evaluator = problem.evaluator()
    utilizations = evaluator.utilizations(layout.matrix)
    return SolveResult(
        layout=layout,
        objective=float(utilizations.max()),
        utilizations=utilizations,
        method="greedy",
        evaluations=evaluator.evaluations,
        elapsed_s=time.perf_counter() - started,
        success=True,
    )


def _run_bounded(target, budget_s, chaos_hook):
    """Run ``target()`` in an abandonable daemon thread.

    Returns ``(outcome, value)`` where outcome is ``ok`` / ``timeout``
    / ``error``.  The chaos hook runs inside the thread, first, so an
    injected stall consumes this rung's budget exactly like a genuinely
    hung solve would.
    """
    box = {}

    def runner():
        try:
            if chaos_hook is not None:
                chaos_hook()
            box["value"] = target()
        except BaseException as error:  # noqa: BLE001 — reported, not hidden
            box["error"] = error

    thread = threading.Thread(target=runner, daemon=True,
                              name="layout-solve-watchdog")
    thread.start()
    thread.join(timeout=budget_s)
    if thread.is_alive():
        return "timeout", None
    if "error" in box:
        return "error", box["error"]
    return "ok", box["value"]


def solve_with_watchdog(problem, initial=None, budget_s=None, method="auto",
                        restarts=1, seed=0, max_iter=150, expert_layouts=(),
                        warm_start=False, workers=1, obs=None,
                        chaos_hook=None):
    """Solve under a wall-clock budget with graceful fallback.

    Args:
        problem: The layout problem.
        budget_s: Wall-clock budget in seconds.  None runs the plain
            solve (no threads, no fallback) and reports rung
            ``portfolio``, not degraded.
        chaos_hook: Optional no-arg callable run at the start of each
            bounded optimization rung — the fault injector's
            :meth:`~repro.faults.injector.FaultInjector.solver_hook`
            plugs in here to simulate hung solves.
        (remaining args as for :func:`repro.core.solver.solve`.)

    Returns:
        A :class:`WatchdogResult`; its ``result.layout`` is always a
        valid layout — the greedy rung guarantees the chain never
        returns empty-handed.
    """
    obs = ensure_obs(obs)
    started = time.perf_counter()

    if budget_s is None:
        result = solve(problem, initial=initial, method=method,
                       restarts=restarts, seed=seed, max_iter=max_iter,
                       expert_layouts=expert_layouts, warm_start=warm_start,
                       workers=workers, obs=obs)
        obs.metrics.counter("repro_watchdog_rung_total",
                            rung=RUNG_PORTFOLIO).inc()
        return WatchdogResult(
            result=result, rung=RUNG_PORTFOLIO, degraded=False,
            budget_s=None, elapsed_s=time.perf_counter() - started,
            attempts=[(RUNG_PORTFOLIO, "ok")],
        )

    budget_s = float(budget_s)
    attempts = []

    # Bounded rungs build private evaluators (evaluator=None) and get no
    # shared obs: if the rung times out its thread keeps running, and a
    # zombie must not touch anything the caller still uses.
    rungs = [
        (RUNG_PORTFOLIO, lambda: solve(
            problem, initial=initial, method=method, restarts=restarts,
            seed=seed, max_iter=max_iter, expert_layouts=expert_layouts,
            warm_start=warm_start, workers=workers,
        )),
    ]
    if method != "partitioned":
        # A partitioned single-start solve is dramatically cheaper than
        # the portfolio on large instances while staying a real
        # optimization — worth a rung of its own before the tightened
        # serial retry.  Pointless when the portfolio rung *was*
        # partitioned already.
        rungs.append((RUNG_PARTITIONED, lambda: solve(
            problem, initial=initial, method="partitioned", restarts=1,
            seed=seed, max_iter=max_iter, workers=workers,
        )))
    rungs += [
        (RUNG_SERIAL, lambda: solve(
            problem, initial=initial, method=method, restarts=1, seed=seed,
            max_iter=min(max_iter, SERIAL_FALLBACK_MAX_ITER),
            warm_start=warm_start and initial is not None, workers=1,
        )),
    ]

    for rung, target in rungs:
        remaining = budget_s - (time.perf_counter() - started)
        if remaining < MIN_RUNG_BUDGET_S:
            attempts.append((rung, "skipped"))
            continue
        rung_started = time.perf_counter()
        outcome, value = _run_bounded(target, remaining, chaos_hook)
        obs.tracer.add_span("watchdog.rung",
                            time.perf_counter() - rung_started,
                            rung=rung, outcome=outcome)
        attempts.append((rung, outcome))
        if outcome == "ok":
            obs.metrics.counter("repro_watchdog_rung_total", rung=rung).inc()
            return WatchdogResult(
                result=value, rung=rung,
                degraded=rung != RUNG_PORTFOLIO,
                budget_s=budget_s,
                elapsed_s=time.perf_counter() - started,
                attempts=attempts,
            )
        if outcome == "timeout":
            obs.metrics.counter("repro_watchdog_timeouts_total",
                                rung=rung).inc()
        else:
            obs.metrics.counter("repro_watchdog_errors_total",
                                rung=rung).inc()

    rung_started = time.perf_counter()
    result = _greedy_result(problem, rung_started)
    obs.tracer.add_span("watchdog.rung",
                        time.perf_counter() - rung_started,
                        rung=RUNG_GREEDY, outcome="ok")
    attempts.append((RUNG_GREEDY, "ok"))
    obs.metrics.counter("repro_watchdog_rung_total", rung=RUNG_GREEDY).inc()
    return WatchdogResult(
        result=result, rung=RUNG_GREEDY, degraded=True, budget_s=budget_s,
        elapsed_s=time.perf_counter() - started, attempts=attempts,
    )
