"""Robust layout across multiple workload scenarios.

The paper recommends one layout per workload description, and its §6.6
comparison shows why that matters: a layout tuned for OLAP1-63 can hurt
under OLAP8-63.  When a system alternates between workloads (daytime
OLTP, nightly batch), an administrator wants a single layout that is
acceptable under *all* of them.  :class:`RobustProblem` extends the
layout problem to a set of workload scenarios and optimizes

    min_L  max_s  max_j  µ_j(W^s, L)

— the worst per-target utilization across every scenario.  It
duck-types :class:`~repro.core.problem.LayoutProblem`, so the solvers,
the regularizer, and the advisor all work on it unchanged.
"""

import numpy as np

from repro import units
from repro.core.objective import ObjectiveEvaluator
from repro.core.problem import LayoutProblem
from repro.errors import WorkloadError


class RobustEvaluator:
    """Scenario-wise max of the single-scenario evaluators."""

    def __init__(self, evaluators):
        self.evaluators = list(evaluators)
        self.evaluations = 0

    def utilization_matrix(self, matrix):
        """Elementwise worst-case µ_ij across scenarios."""
        self.evaluations += 1
        stacked = [e.utilization_matrix(matrix) for e in self.evaluators]
        return np.maximum.reduce(stacked)

    def utilizations(self, matrix):
        """Per-target worst-case utilization across scenarios."""
        self.evaluations += 1
        stacked = [e.utilizations(matrix) for e in self.evaluators]
        return np.maximum.reduce(stacked)

    def objective(self, matrix):
        return float(self.utilizations(matrix).max())

    def object_loads(self, matrix):
        """Worst-case total load per object (regularization order)."""
        stacked = [e.object_loads(matrix) for e in self.evaluators]
        return np.maximum.reduce(stacked)

    def softmax_objective(self, matrix, beta=25.0):
        mu = self.utilizations(matrix)
        peak = mu.max()
        return float(peak + np.log(np.exp(beta * (mu - peak)).sum()) / beta)

    def per_scenario_objectives(self, matrix):
        """The max utilization under each scenario separately."""
        return [e.objective(matrix) for e in self.evaluators]

    # -- incremental evaluation: scenario-wise max of the per-scenario
    #    incremental caches (see ObjectiveEvaluator) -------------------

    def utilizations_with_rows(self, matrix, i, rows):
        stacked = [
            e.utilizations_with_rows(matrix, i, rows) for e in self.evaluators
        ]
        return np.maximum.reduce(stacked)

    def evaluate_rows(self, matrix, i, rows):
        self.evaluations += np.atleast_2d(np.asarray(rows)).shape[0]
        return self.utilizations_with_rows(matrix, i, rows).max(axis=1)

    def utilizations_with_row(self, matrix, i, row):
        return self.utilizations_with_rows(matrix, i, row)[0]

    def objective_with_row(self, matrix, i, row):
        return float(self.utilizations_with_row(matrix, i, row).max())

    def utilizations_without_row(self, matrix, i):
        stacked = [
            e.utilizations_without_row(matrix, i) for e in self.evaluators
        ]
        return np.maximum.reduce(stacked)

    def commit_row(self, i, row):
        for e in self.evaluators:
            e.commit_row(i, row)

    def utilizations_for(self, matrix):
        stacked = [e.utilizations_for(matrix) for e in self.evaluators]
        return np.maximum.reduce(stacked)

    def object_loads_for(self, matrix):
        stacked = [e.object_loads_for(matrix) for e in self.evaluators]
        return np.maximum.reduce(stacked)


class RobustProblem(LayoutProblem):
    """A layout problem with several workload scenarios.

    Args:
        object_sizes: Mapping of object name to size.
        targets: Target specs (shared across scenarios).
        scenarios: Sequence of workload-description lists, one list per
            scenario; every scenario must describe the same objects.
        stripe_size / pinning: As for :class:`LayoutProblem`.
    """

    def __init__(self, object_sizes, targets, scenarios,
                 stripe_size=units.DEFAULT_STRIPE_SIZE, pinning=None):
        scenarios = [list(s) for s in scenarios]
        if not scenarios:
            raise WorkloadError("a robust problem needs at least one scenario")
        super().__init__(object_sizes, targets, scenarios[0],
                         stripe_size=stripe_size, pinning=pinning)
        self.scenario_problems = [self]
        for workloads in scenarios[1:]:
            self.scenario_problems.append(
                LayoutProblem(object_sizes, targets, workloads,
                              stripe_size=stripe_size, pinning=pinning)
            )
        self.n_scenarios = len(scenarios)

    def evaluator(self, metrics=None):
        # Scenario evaluators share the registry: the counters total the
        # real per-scenario evaluation work, one increment per scenario.
        return RobustEvaluator([
            ObjectiveEvaluator(problem, metrics=metrics)
            for problem in self.scenario_problems
        ])

    def objects_by_rate(self):
        """Order objects by their worst-case total request rate."""
        rates = np.zeros(self.n_objects)
        for problem in self.scenario_problems:
            rates = np.maximum(
                rates,
                np.array([w.total_rate for w in problem.workloads]),
            )
        return list(np.argsort(-rates, kind="stable"))