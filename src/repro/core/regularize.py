"""Regularization post-processing (paper Section 4.3).

Layout mechanisms that round-robin stripes can only implement *regular*
layouts (equal shares over a subset of targets).  Adding regularity
constraints to the NLP would turn it combinatorial (up to ``2^M - 1``
layouts per object), so the paper instead regularizes the solver's
fractional layout object by object:

* objects are processed in decreasing order of the total storage load
  ``Σ_j µ_ij`` they impose — early mistakes can still be corrected by
  later objects, late mistakes are small;
* for each object, 2M candidates are generated — M *consistent* layouts
  (equal shares over the top-k targets in the solver's own weight order,
  ties broken by target id) and M *balancing* layouts (equal shares over
  the k currently least-utilized targets, utilizations measured with the
  object's own fractional row removed so its current placement cannot
  bias the target order);
* capacity-violating candidates are discarded and the survivor
  minimizing the maximum target utilization wins.
"""

import numpy as np

from repro.errors import RegularizationError
from repro.core.layout import Layout
from repro.obs import ensure_obs


def consistent_candidates(row, n_targets):
    """The M consistent regular candidates for a solver row.

    For a solver row like (47%, 35%, 18%) these are (100%, 0%, 0%),
    (50%, 50%, 0%), and (33%, 33%, 33%): equal shares over the top-k
    targets in decreasing solver-weight order (ties by target id).
    """
    order = sorted(range(n_targets), key=lambda j: (-row[j], j))
    return [Layout.regular_row(order[:k], n_targets) for k in range(1, n_targets + 1)]


def balancing_candidates(utilizations, n_targets):
    """The M balancing candidates: equal shares over k least-loaded targets."""
    order = sorted(range(n_targets), key=lambda j: (utilizations[j], j))
    return [Layout.regular_row(order[:k], n_targets) for k in range(1, n_targets + 1)]


def feasibility_candidates(size, free, n_targets):
    """Fallback candidates when every paper candidate violates capacity.

    Both paper candidate classes order targets by solver weight or by
    utilization, so a small, attractive, but *full* target (a nearly
    full SSD, say) can appear in every prefix and rule out all 2M
    candidates even though plenty of space exists elsewhere.  These
    candidates order targets by remaining free space instead: equal
    shares over the k roomiest targets, keeping only k where each share
    fits.
    """
    order = sorted(range(n_targets), key=lambda j: (-free[j], j))
    rows = []
    for k in range(1, n_targets + 1):
        share = size / k
        if all(free[j] >= share for j in order[:k]):
            rows.append(Layout.regular_row(order[:k], n_targets))
    return rows


def regularize(problem, solved_layout, evaluator=None, obs=None):
    """Regularize a solver layout (paper Figure 4's final step).

    Args:
        problem: The layout problem.
        solved_layout: The (possibly non-regular) solver layout.
        evaluator: Optional shared objective evaluator.
        obs: Optional :class:`~repro.obs.Instrumentation`; wraps each
            per-object pass in a ``regularize.object`` span and counts
            objects/candidates in ``repro_regularize_*``.

    Returns:
        A regular, valid :class:`Layout`.

    Raises:
        RegularizationError: When every candidate for some object
            violates capacity — possible under very tight space
            constraints, as the paper notes.
    """
    obs = ensure_obs(obs)
    if evaluator is None:
        evaluator = problem.evaluator(metrics=obs.metrics)
    observing = obs.enabled
    m_objects = obs.metrics.counter("repro_regularize_objects_total")
    m_candidates = obs.metrics.counter("repro_regularize_candidates_total")
    n, m = problem.n_objects, problem.n_targets
    upper, fixed_rows = problem.pinning.resolve(
        problem.object_names, problem.target_names
    )

    matrix = solved_layout.matrix.copy()
    loads = evaluator.object_loads_for(matrix)
    order = list(np.argsort(-loads, kind="stable"))

    # Bytes already committed by regularized (and fixed) objects.
    committed = np.zeros(m)
    for i, row in fixed_rows.items():
        committed += problem.sizes[i] * row
        matrix[i] = row
    processed = set(fixed_rows)

    for i in order:
        if i in processed:
            continue
        span = obs.tracer.start(
            "regularize.object", object=problem.object_names[i]
        ) if observing else None
        # Balancing targets are ranked with object i's own fractional
        # row removed: ranking by the full utilizations would let the
        # object's current placement inflate its own targets and push
        # them to the back of the "least utilized" order.
        utilizations = evaluator.utilizations_without_row(matrix, i)
        candidates = consistent_candidates(matrix[i], m)
        candidates += balancing_candidates(utilizations, m)
        free = problem.capacities - committed
        candidates += feasibility_candidates(problem.sizes[i], free, m)

        feasible = [
            row for row in candidates
            if not np.any((row > 0) & (upper[i] <= 0))
            and not np.any(committed + problem.sizes[i] * row
                           > problem.capacities * (1 + 1e-9))
        ]
        if not feasible:
            if observing:
                obs.tracer.finish(span, error="RegularizationError")
            raise RegularizationError(
                "no valid regular candidate for object %s; space constraints "
                "are too tight" % problem.object_names[i]
            )
        # All 2M+k surviving candidates in one vectorized pass; ties
        # within 1e-12 keep the earliest candidate (consistent layouts
        # are generated before balancing ones).
        values = evaluator.evaluate_rows(matrix, i, np.array(feasible))
        best_row = feasible[
            int(np.argmax(values <= values.min() + 1e-12))
        ]
        matrix[i] = best_row
        evaluator.commit_row(i, best_row)
        committed += problem.sizes[i] * best_row
        processed.add(i)
        m_objects.inc()
        m_candidates.inc(len(feasible))
        if observing:
            obs.tracer.finish(span, candidates=len(feasible),
                              objective=float(values.min()))

    layout = problem.make_layout(matrix)
    problem.validate_layout(layout)
    if not layout.is_regular():
        raise RegularizationError("regularization produced a non-regular layout")
    return layout
