"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LayoutError(ReproError):
    """An invalid layout was constructed or requested.

    Raised when a layout matrix violates the integrity constraint
    (rows must sum to one), the capacity constraint, or has entries
    outside ``[0, 1]``.
    """


class RegularizationError(LayoutError):
    """The regularizer could not produce a valid regular layout.

    The paper (Section 4.3) notes this can happen when space constraints
    are very tight and all 2M candidate regular layouts for some object
    violate capacity; manual intervention is then required.
    """


class CapacityError(LayoutError):
    """The objects cannot fit on the targets at all.

    Raised eagerly when the total object size exceeds total target
    capacity, or when a single object placement is impossible.
    """


class WorkloadError(ReproError):
    """A workload description is malformed or inconsistent.

    Examples: negative request rates, run count below one, overlap values
    outside ``[0, 1]``.
    """


class CalibrationError(ReproError):
    """A cost model was queried outside a usable calibration state."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SolverError(ReproError):
    """The NLP solve failed to produce any usable layout."""


class ScenarioError(ReproError):
    """A scenario spec or experiment matrix is malformed.

    Examples: a YAML file that does not parse, a schedule entry naming
    an unknown mix, a task weight that is not positive.  Messages are
    one line and carry the file/field path so a CLI user can fix the
    spec without reading a traceback.
    """


class FaultError(ReproError):
    """A fault plan or migration journal is malformed or inconsistent.

    Examples: a fault event naming an unknown target, a journal whose
    recorded chunk list does not match the migration being resumed.
    """
