"""Controller decision/metrics log.

Every controller decision — periodic checks, drift triggers, accepted
and rejected re-solves, migration start/finish — lands here as one
structured event, exportable as JSON-lines (the same machine-readable
format the ``advise --json`` CLI emits for layouts) and summarizable
as a table.  The log is how a benchmark, a test, or an operator audits
what the controller did and why.

The log is wired into the unified instrumentation layer
(:mod:`repro.obs`): when constructed with an ``obs`` bundle, every
emitted event is *also* recorded as a zero-duration tracer event
(``online.<kind>``) and counted in the ``repro_online_events_total``
metric, so one ``--metrics`` trace file carries the controller's whole
decision history alongside solver spans and simulator metrics.  The
in-memory list is kept for compatibility and for :meth:`summary`.

Events carry a monotonic ``seq`` field besides their (rounded)
timestamp: simulated time is rounded to 6 decimals on emit, so several
events of one control-loop iteration share a timestamp, and only the
sequence number preserves their total order across a JSONL round-trip.
"""

import json
import warnings
from collections import Counter

from repro.obs import ensure_obs


class EventLog:
    """Append-only structured event log.

    Each event is a plain dict with at least ``seq`` (monotonic emit
    order), ``time`` (simulated seconds), and ``kind``.

    Args:
        obs: Optional :class:`~repro.obs.Instrumentation`; every emit
            is forwarded to its tracer (as an ``online.<kind>`` event
            span) and metrics (``repro_online_events_total{kind=…}``).
    """

    def __init__(self, obs=None):
        self.events = []
        #: Malformed lines dropped by the last :meth:`from_jsonl` load.
        self.skipped = 0
        self._obs = ensure_obs(obs)

    def emit(self, time, kind, **payload):
        """Record one event and return it."""
        event = {"seq": len(self.events), "time": round(float(time), 6),
                 "kind": str(kind)}
        event.update(payload)
        self.events.append(event)
        if self._obs.enabled:
            self._obs.metrics.counter(
                "repro_online_events_total", kind=event["kind"]
            ).inc()
            self._obs.tracer.event("online." + event["kind"], **event)
        return event

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind):
        """All events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def last(self, kind=None):
        """Most recent event (of a kind), or None."""
        pool = self.events if kind is None else self.of_kind(kind)
        return pool[-1] if pool else None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_jsonl(self, path):
        """Write every event as one JSON object per line."""
        with open(path, "w") as handle:
            for event in self.events:
                handle.write(json.dumps(event))
                handle.write("\n")

    @classmethod
    def from_jsonl(cls, path):
        """Load an event log written by :meth:`to_jsonl`.

        Events are restored in ``seq`` order (equal-time events would
        otherwise lose their intra-tick order); logs written before the
        ``seq`` field existed keep their file order and are assigned
        sequence numbers on load.

        Parsing is tolerant: a line that is not valid JSON, or not a
        JSON object, is skipped and counted in the returned log's
        ``skipped`` attribute (with a one-line warning) rather than
        aborting the load — a crashed writer leaves a torn final line,
        and one bad line should not make a whole run's history
        unreadable.
        """
        log = cls()
        skipped = 0
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    event = None
                if not isinstance(event, dict):
                    skipped += 1
                    warnings.warn(
                        "%s:%d: skipping malformed event line" % (path, number),
                        RuntimeWarning, stacklevel=2,
                    )
                    continue
                log.events.append(event)
        log.skipped = skipped
        for index, event in enumerate(log.events):
            event.setdefault("seq", index)
        log.events.sort(key=lambda e: e["seq"])
        return log

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def counts(self):
        """Event count per kind."""
        return Counter(e["kind"] for e in self.events)

    def summary(self):
        """Human-readable controller run summary table."""
        counts = self.counts()
        triggers = Counter(
            e.get("reason", "?") for e in self.of_kind("trigger")
        )
        accepted = self.of_kind("accept")
        rejected = self.of_kind("reject")
        migrations = self.of_kind("migrated")
        bytes_moved = sum(e.get("bytes_moved", 0) for e in migrations)
        migration_s = sum(e.get("elapsed_s", 0.0) for e in migrations)
        latencies = [
            e["decision_latency_s"] for e in accepted + rejected
            if "decision_latency_s" in e
        ]

        lines = ["online controller summary"]
        if self.skipped:
            # Data loss must not hide in a Python warning: a log loaded
            # from JSONL with torn/garbled lines says so up front.
            lines.append("  SKIPPED           %6d  malformed line%s dropped "
                         "on load" % (self.skipped,
                                      "" if self.skipped == 1 else "s"))
        lines.append("  checks            %6d" % counts.get("check", 0))
        lines.append("  drift triggers    %6d  (%s)" % (
            counts.get("trigger", 0),
            ", ".join("%s: %d" % kv for kv in sorted(triggers.items()))
            or "none",
        ))
        lines.append("  re-solves         %6d  accepted %d, rejected %d" % (
            len(accepted) + len(rejected), len(accepted), len(rejected),
        ))
        lines.append("  migrations        %6d  %.1f MiB moved in %.2f s" % (
            len(migrations), bytes_moved / (1 << 20), migration_s,
        ))
        if latencies:
            lines.append("  decision latency  %8.4f s mean (%d decisions)"
                         % (sum(latencies) / len(latencies), len(latencies)))
        for event in accepted:
            lines.append(
                "  accept @ %8.2f s  util %.3f -> %.3f  plan %.1f MiB"
                % (event["time"], event.get("util_before", float("nan")),
                   event.get("util_after", float("nan")),
                   event.get("plan_bytes", 0) / (1 << 20))
            )
        return "\n".join(lines)
