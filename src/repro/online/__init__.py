"""Online layout control (closing the paper's §8 loop).

The advisor in :mod:`repro.core` is a one-shot offline tool: observe,
fit, solve, hand a layout to an administrator.  This package keeps the
loop running while the system serves traffic:

* :class:`~repro.online.monitor.WorkloadMonitor` — maintains sliding-
  window, exponentially-decayed per-object workload estimates from the
  live completion stream (or a replayed trace).
* :class:`~repro.online.drift.DriftDetector` — compares the fitted
  workload against the workload the current layout was solved for and
  fires (with hysteresis and cooldown) when the layout has gone stale.
* :class:`~repro.online.controller.OnlineController` — on a drift
  trigger, runs a warm-started incremental solve, accepts the new
  layout only when the predicted utilization gain beats the migration
  bill, and executes the migration as throttled background I/O.
* :class:`~repro.online.executor.ThrottledMigrator` — the background
  copy itself, injected into the simulator so migration traffic
  contends with foreground streams.
* :class:`~repro.online.events.EventLog` — JSONL decision/metrics log
  and summary table.
"""

from repro.online.controller import ControllerConfig, OnlineController
from repro.online.drift import DriftDetector, DriftSignal
from repro.online.events import EventLog
from repro.online.executor import ThrottledMigrator
from repro.online.monitor import WorkloadMonitor

__all__ = [
    "ControllerConfig",
    "DriftDetector",
    "DriftSignal",
    "EventLog",
    "OnlineController",
    "ThrottledMigrator",
    "WorkloadMonitor",
]
