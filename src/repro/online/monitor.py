"""Continuous workload estimation from the live completion stream.

The offline pipeline fits Rome-style workload descriptions from an
archived trace (:mod:`repro.workload.analyzer`).  Online, the same
parameters must track a *moving* workload: the monitor buckets
completions into fixed windows and folds each closed window into
exponentially-decayed aggregates, so the fitted rates, sizes, run
counts, and overlaps follow drift with a configurable half-life while
old phases fade out instead of polluting the estimate forever.
"""

from collections import OrderedDict, defaultdict

from repro import units
from repro.workload.spec import ObjectWorkload


class _DecayedObjectStats:
    """Exponentially-decayed per-object workload aggregates."""

    def __init__(self):
        # Decayed sums over closed windows.
        self.reads = 0.0
        self.writes = 0.0
        self.read_bytes = 0.0
        self.write_bytes = 0.0
        self.runs = 0.0
        # Current (open) window accumulators.
        self.cur_reads = 0
        self.cur_writes = 0
        self.cur_read_bytes = 0
        self.cur_write_bytes = 0
        self.cur_runs = 0
        self._last_end = None

    def add(self, record):
        if record.kind == "read":
            self.cur_reads += 1
            self.cur_read_bytes += record.size
        else:
            self.cur_writes += 1
            self.cur_write_bytes += record.size
        # Run detection over the object's time-ordered request stream,
        # the same rule the offline analyzer applies.
        if record.logical_offset is not None:
            if self._last_end is None or record.logical_offset != self._last_end:
                self.cur_runs += 1
            self._last_end = record.logical_offset + record.size
        else:
            self.cur_runs += 1

    def fold(self, decay):
        """Close the current window into the decayed aggregates."""
        self.reads = self.reads * decay + self.cur_reads
        self.writes = self.writes * decay + self.cur_writes
        self.read_bytes = self.read_bytes * decay + self.cur_read_bytes
        self.write_bytes = self.write_bytes * decay + self.cur_write_bytes
        self.runs = self.runs * decay + self.cur_runs
        self.cur_reads = self.cur_writes = 0
        self.cur_read_bytes = self.cur_write_bytes = 0
        self.cur_runs = 0

    def decay_only(self, decay):
        """Age the aggregates across an idle window."""
        self.reads *= decay
        self.writes *= decay
        self.read_bytes *= decay
        self.write_bytes *= decay
        self.runs *= decay

    @property
    def total(self):
        return self.reads + self.writes


class WorkloadMonitor:
    """Sliding-window per-object workload estimation with decay.

    Feed it completion records — live, by registering
    :meth:`observe` as an engine completion observer, or offline by
    replaying a trace — then ask for fitted
    :class:`~repro.workload.spec.ObjectWorkload` descriptions at any
    point in time.

    Args:
        window_s: Bucketing window; also the granularity of overlap
            estimation (two objects overlap in a window when both
            complete at least one request in it).
        halflife_s: Half-life of the exponential decay applied to
            closed windows.  Roughly: the estimate forgets a workload
            phase a few half-lives after it ends.
        overlap_windows: How many recent windows of per-object activity
            to retain for overlap estimation.
    """

    def __init__(self, window_s=2.0, halflife_s=20.0, overlap_windows=64):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if halflife_s <= 0:
            raise ValueError("halflife_s must be positive")
        self.window_s = float(window_s)
        self.halflife_s = float(halflife_s)
        self.overlap_windows = int(overlap_windows)
        #: Decay applied per closed window.
        self.window_decay = 0.5 ** (self.window_s / self.halflife_s)

        self._stats = defaultdict(_DecayedObjectStats)
        self._window = None          # index of the open window
        self._weight = 0.0           # decayed seconds of closed windows
        self._active = defaultdict(OrderedDict)  # obj -> recent windows
        self.observed = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def observe(self, record):
        """Account one completion record (engine observer entry point).

        Records with ``obj=None`` (calibration noise, migration
        traffic) are ignored.  Timestamps are expected to be
        near-nondecreasing, as completions naturally are; a record
        older than the open window is folded into the open window.
        """
        if record.obj is None:
            return
        window = int(record.finish_time // self.window_s)
        if self._window is None:
            self._window = window
        elif window > self._window:
            self._roll(window)
        self._stats[record.obj].add(record)
        active = self._active[record.obj]
        active[max(window, self._window)] = True
        if len(active) > self.overlap_windows:
            active.popitem(last=False)
        self.observed += 1

    def advance(self, now):
        """Close windows up to simulated time ``now`` (controller tick)."""
        if self._window is None:
            self._window = int(now // self.window_s)
            return
        window = int(now // self.window_s)
        if window > self._window:
            self._roll(window)

    def _roll(self, new_window):
        decay = self.window_decay
        closed = new_window - self._window      # windows to close (≥ 1)
        idle = closed - 1                       # trailing empty windows
        for stats in self._stats.values():
            stats.fold(decay)
            if idle:
                stats.decay_only(decay ** idle)
        # Every closed window contributes window_s of observation time,
        # decayed by its age relative to the newest closed window — a
        # geometric partial sum; steady state converges to
        # window_s / (1 - decay), so rate = decayed_count / weight is
        # unbiased under a stationary workload.
        if decay < 1.0:
            geometric = (1.0 - decay ** closed) / (1.0 - decay)
        else:
            geometric = float(closed)
        self._weight = self._weight * decay ** closed + self.window_s * geometric
        self._window = new_window

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    @property
    def objects(self):
        """Names of objects observed so far."""
        return sorted(self._stats)

    @property
    def horizon_s(self):
        """Effective (decayed) observation time behind the estimates."""
        return self._weight

    def overlap(self, obj, other):
        """Fraction of ``obj``-active recent windows with ``other`` active."""
        mine = self._active.get(obj)
        if not mine:
            return 0.0
        theirs = self._active.get(other)
        if not theirs:
            return 0.0
        shared = sum(1 for w in mine if w in theirs)
        return shared / len(mine)

    def fit(self, obj):
        """Fitted :class:`ObjectWorkload` for one object (zero-rate when
        the object was never observed or has fully decayed away)."""
        stats = self._stats.get(obj)
        if stats is None or self._weight <= 0 or stats.total <= 0:
            return ObjectWorkload(name=obj)
        read_rate = stats.reads / self._weight
        write_rate = stats.writes / self._weight
        read_size = (stats.read_bytes / stats.reads
                     if stats.reads > 0 else units.DEFAULT_PAGE_SIZE)
        write_size = (stats.write_bytes / stats.writes
                      if stats.writes > 0 else units.DEFAULT_PAGE_SIZE)
        run_count = stats.total / stats.runs if stats.runs > 0 else 1.0

        overlap = {}
        for other in self._stats:
            if other == obj:
                continue
            value = self.overlap(obj, other)
            if value > 0:
                overlap[other] = min(1.0, value)

        return ObjectWorkload(
            name=obj,
            read_size=max(1.0, read_size),
            write_size=max(1.0, write_size),
            read_rate=read_rate,
            write_rate=write_rate,
            run_count=max(1.0, run_count),
            overlap=overlap,
        )

    def workloads(self, names=None):
        """Fitted workloads for ``names`` (default: every observed
        object), including zero-rate specs for never-observed names so
        the full catalog can be re-solved."""
        if names is None:
            names = self.objects
        return [self.fit(name) for name in names]

    def snapshot(self):
        """Compact per-object estimate dict for event logging."""
        out = {}
        for obj in self.objects:
            spec = self.fit(obj)
            out[obj] = {
                "read_rate": round(spec.read_rate, 3),
                "write_rate": round(spec.write_rate, 3),
                "run_count": round(spec.run_count, 2),
            }
        return out

    def decayed_rate(self, obj):
        """Current total request rate estimate for one object."""
        stats = self._stats.get(obj)
        if stats is None or self._weight <= 0:
            return 0.0
        return stats.total / self._weight

    # ------------------------------------------------------------------
    # Durability (serving-layer snapshots)
    # ------------------------------------------------------------------

    def to_state(self):
        """JSON-safe digest of the whole estimation state.

        Captures the decayed aggregates, the open-window accumulators,
        and the per-object activity windows — everything
        :meth:`restore_state` needs to resume estimation exactly where
        a crashed process left off.
        """
        objects = {}
        for name, stats in self._stats.items():
            objects[name] = {
                "reads": stats.reads, "writes": stats.writes,
                "read_bytes": stats.read_bytes,
                "write_bytes": stats.write_bytes, "runs": stats.runs,
                "cur_reads": stats.cur_reads,
                "cur_writes": stats.cur_writes,
                "cur_read_bytes": stats.cur_read_bytes,
                "cur_write_bytes": stats.cur_write_bytes,
                "cur_runs": stats.cur_runs,
                "last_end": stats._last_end,
            }
        return {
            "window_s": self.window_s,
            "halflife_s": self.halflife_s,
            "window": self._window,
            "weight": self._weight,
            "observed": self.observed,
            "objects": objects,
            "active": {name: sorted(windows)
                       for name, windows in self._active.items()},
        }

    def restore_state(self, state):
        """Load a :meth:`to_state` digest into this monitor.

        Tolerant of a digest taken under different tuning (the current
        window/half-life stay in force); a None/empty digest is a
        no-op, so recovery from a pre-durability snapshot still works.
        """
        if not state:
            return self
        self._window = state.get("window")
        self._weight = float(state.get("weight", 0.0))
        self.observed = int(state.get("observed", 0))
        self._stats = defaultdict(_DecayedObjectStats)
        for name, values in (state.get("objects") or {}).items():
            stats = self._stats[name]
            stats.reads = float(values.get("reads", 0.0))
            stats.writes = float(values.get("writes", 0.0))
            stats.read_bytes = float(values.get("read_bytes", 0.0))
            stats.write_bytes = float(values.get("write_bytes", 0.0))
            stats.runs = float(values.get("runs", 0.0))
            stats.cur_reads = int(values.get("cur_reads", 0))
            stats.cur_writes = int(values.get("cur_writes", 0))
            stats.cur_read_bytes = int(values.get("cur_read_bytes", 0))
            stats.cur_write_bytes = int(values.get("cur_write_bytes", 0))
            stats.cur_runs = int(values.get("cur_runs", 0))
            stats._last_end = values.get("last_end")
        self._active = defaultdict(OrderedDict)
        for name, windows in (state.get("active") or {}).items():
            active = self._active[name]
            for window in sorted(windows)[-self.overlap_windows:]:
                active[int(window)] = True
        return self


def replay_into(monitor, records):
    """Feed an iterable of completion records through a monitor in
    timestamp order; returns the monitor for chaining."""
    for record in sorted(records, key=lambda r: r.finish_time):
        monitor.observe(record)
    return monitor
