"""Workload-drift detection with hysteresis.

The controller must re-solve when the layout has gone stale — but not
on every noisy estimate.  The detector keeps the workload the current
layout was *solved for* (and the max utilization predicted at solve
time) and compares it against the monitor's freshly fitted workload on
two axes:

* **predicted degradation** — the cost models' estimated max
  utilization of the *current* layout under the *new* workload, versus
  the value it was solved to;
* **workload divergence** — a rate-weighted distance between the
  solved-for and fitted request rates, in [0, 1].

Either axis crossing its threshold for ``patience`` consecutive checks
(hysteresis), outside the post-decision ``cooldown_s`` (anti-flap),
fires a :class:`DriftSignal`.
"""

from dataclasses import dataclass


@dataclass
class DriftSignal:
    """Outcome of one drift check."""

    fired: bool
    reason: str                 # "utilization", "divergence", or ""
    predicted_util: float       # current layout under fitted workload
    solved_util: float          # what the layout was solved to
    divergence: float           # rate distance in [0, 1]
    streak: int                 # consecutive over-threshold checks

    def as_payload(self):
        return {
            "fired": self.fired,
            "reason": self.reason,
            "predicted_util": round(self.predicted_util, 4),
            "solved_util": round(self.solved_util, 4),
            "divergence": round(self.divergence, 4),
            "streak": self.streak,
        }


def rate_divergence(solved_workloads, fitted_workloads):
    """Rate-weighted workload distance in [0, 1].

    ``Σ_i |r_i^new − r_i^old| / Σ_i max(r_i^new, r_i^old)`` over total
    request rates; 0 when rates match, →1 when the active object set
    has completely changed.
    """
    solved = {w.name: w.total_rate for w in solved_workloads}
    fitted = {w.name: w.total_rate for w in fitted_workloads}
    names = set(solved) | set(fitted)
    delta = 0.0
    scale = 0.0
    for name in names:
        old = solved.get(name, 0.0)
        new = fitted.get(name, 0.0)
        delta += abs(new - old)
        scale += max(new, old)
    if scale <= 0:
        return 0.0
    return delta / scale


class DriftDetector:
    """Fires when the current layout no longer fits the workload.

    Args:
        util_degradation: Relative predicted max-utilization increase
            over the solved-for value that counts as drift (0.25 =
            fire at +25%); also fires when the predicted utilization
            crosses ``util_ceiling`` outright even if the layout never
            promised better.
        divergence_threshold: :func:`rate_divergence` level that counts
            as drift regardless of predicted utilization.
        util_ceiling: Absolute predicted max-utilization that always
            counts as drift (a target predicted saturated is a problem
            even if the solved-for prediction was already high).
        patience: Consecutive over-threshold checks required to fire
            (hysteresis against one-window noise).
        cooldown_s: Minimum time after a rebase or an explicit
            :meth:`hold` before the detector may fire again
            (anti-flapping).
    """

    def __init__(self, util_degradation=0.25, divergence_threshold=0.5,
                 util_ceiling=0.95, patience=2, cooldown_s=30.0):
        self.util_degradation = float(util_degradation)
        self.divergence_threshold = float(divergence_threshold)
        self.util_ceiling = float(util_ceiling)
        self.patience = max(1, int(patience))
        self.cooldown_s = float(cooldown_s)

        self.solved_workloads = []
        self.solved_util = 0.0
        self._streak = 0
        self._hold_until = float("-inf")

    def rebase(self, workloads, solved_util, now):
        """Install the workload/prediction the layout was just solved
        for; starts a fresh cooldown."""
        self.solved_workloads = list(workloads)
        self.solved_util = float(solved_util)
        self._streak = 0
        self._hold_until = now + self.cooldown_s

    def hold(self, now):
        """Start a cooldown without rebasing (e.g. after a rejected
        re-solve, so the controller does not re-run the solver every
        check while the workload stays drifted)."""
        self._streak = 0
        self._hold_until = now + self.cooldown_s

    def in_cooldown(self, now):
        return now < self._hold_until

    def check(self, now, fitted_workloads, predicted_util):
        """Evaluate one drift check; returns a :class:`DriftSignal`.

        Args:
            now: Current (simulated) time.
            fitted_workloads: The monitor's current workload estimates.
            predicted_util: Estimated max utilization of the *current*
                layout under ``fitted_workloads`` (the caller owns the
                evaluator).
        """
        divergence = rate_divergence(self.solved_workloads, fitted_workloads)
        degraded = (
            predicted_util > self.solved_util * (1.0 + self.util_degradation)
            or predicted_util > self.util_ceiling
        )
        diverged = divergence > self.divergence_threshold

        reason = ""
        if degraded:
            reason = "utilization"
        elif diverged:
            reason = "divergence"

        if reason and not self.in_cooldown(now):
            self._streak += 1
        else:
            self._streak = 0

        fired = self._streak >= self.patience
        return DriftSignal(
            fired=fired,
            reason=reason if fired else reason,
            predicted_util=float(predicted_util),
            solved_util=self.solved_util,
            divergence=divergence,
            streak=self._streak,
        )
