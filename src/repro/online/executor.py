"""Throttled execution of a migration plan inside the simulator.

The migration planner (:mod:`repro.core.migration`) says *what* moves;
this module actually moves it.  Each :class:`~repro.core.migration.Move`
is split into chunks; every chunk is a read request at the source target
followed by a write request at the destination target, issued through
the normal submission path so migration traffic queues behind — and
delays — foreground requests.  A bounded in-flight window plus an
optional inter-chunk pace keep the copy throttled, the way a production
rebalancer caps its background bandwidth.

Migration requests carry ``obj=None`` so the workload monitor and trace
analyzer (which skip untagged records) do not mistake rebalancing
traffic for application workload.

Two resilience features ride on the copy loop:

* **crash-safe journaling** — with a
  :class:`~repro.faults.journal.MigrationJournal` attached, every chunk
  is recorded after its destination write lands and chunks the journal
  already holds are skipped, so a migrator rebuilt from the journal
  resumes exactly where the crashed one stopped;
* **restore path** — a chunk whose source target is failed (or whose
  read errors mid-copy) is written anyway: the simulator stands in for
  recovery from redundancy (a RAID rebuild or replica read), which is
  what lets an evacuation drain a target that can no longer be read.
"""

from repro import units
from repro.errors import FaultError, SimulationError
from repro.obs.metrics import NULL_REGISTRY
from repro.storage.request import IORequest
from repro.storage.streams import next_stream_id


class ThrottledMigrator:
    """Executes a :class:`~repro.core.migration.MigrationPlan` as
    background I/O.

    Args:
        ctx: The :class:`~repro.storage.streams.SimContext` of the live
            run; migration requests go to its targets.
        plan: The migration plan to execute.
        chunk: Copy granularity in bytes (default: one LVM stripe).
        window: Maximum chunks in flight at once (the throttle).
        pace_s: Extra think time between one chunk's write completing
            and the next chunk's read being issued, per window slot.
        on_done: Callback invoked with the migrator when the last chunk
            lands.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            completed chunks and copied bytes are counted in
            ``repro_migration_chunks_total`` /
            ``repro_migration_bytes_total``.
        journal: Optional
            :class:`~repro.faults.journal.MigrationJournal`; chunks the
            journal already records are skipped (crash resume) and every
            newly landed chunk is appended to it.  Must describe exactly
            this plan and chunk size.
    """

    def __init__(self, ctx, plan, chunk=units.DEFAULT_STRIPE_SIZE,
                 window=1, pace_s=0.0, on_done=None, metrics=None,
                 journal=None):
        if window < 1:
            raise SimulationError("migration window must be at least 1")
        if chunk < 1:
            raise SimulationError("migration chunk must be positive")
        self.ctx = ctx
        self.plan = plan
        self.chunk = int(chunk)
        self.window = int(window)
        self.pace_s = float(pace_s)
        self.on_done = on_done
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_chunks = metrics.counter("repro_migration_chunks_total")
        self._m_bytes = metrics.counter("repro_migration_bytes_total")
        self.stream_id = next_stream_id()

        target_index = {t.name: j for j, t in enumerate(ctx.targets)}
        self._chunks = []          # (source index, destination index, bytes)
        for move in plan.moves:
            src = target_index[move.source]
            dst = target_index[move.destination]
            left = move.bytes
            while left > 0:
                size = min(self.chunk, left)
                self._chunks.append((src, dst, size))
                left -= size
        self._next = 0
        self._read_cursor = [0] * len(ctx.targets)
        self._write_cursor = [0] * len(ctx.targets)

        self.journal = journal
        self._skip = set()
        if journal is not None:
            if not journal.matches(plan, self.chunk):
                raise FaultError(
                    "journal does not describe this migration "
                    "(moves or chunk size differ)"
                )
            self._skip = set(journal.done)

        self.started = False
        self.finished = False
        self.cancelled = False
        self.start_time = None
        self.finish_time = None
        self.bytes_moved = 0
        self.chunks_done = 0
        self.chunks_skipped = 0
        self.chunks_restored = 0
        self.chunks_failed = 0
        self._in_flight = 0

    @property
    def total_chunks(self):
        return len(self._chunks)

    def start(self):
        """Begin copying; fills the in-flight window."""
        if self.started:
            raise SimulationError("migration already started")
        self.started = True
        self.start_time = self.ctx.engine.now
        if not self._chunks:
            self._finish()
            return self
        for _ in range(min(self.window, len(self._chunks))):
            self._issue()
        if self._in_flight == 0 and self._next >= len(self._chunks):
            # Every chunk was already journaled by a previous attempt.
            self._finish()
        return self

    def cancel(self):
        """Stop issuing chunks; in-flight ones complete, ``on_done``
        never fires.  Used when an emergency re-solve supersedes the
        migration in progress; an attached journal keeps the chunks
        that did land."""
        self.cancelled = True
        if self.started and self._in_flight == 0:
            self._finish()
        return self

    def _sequential_lba(self, cursor, target_j, size):
        """Next address of a per-target sequential copy cursor.

        Real rebalancers stream regions sequentially; modelling the copy
        as a sequential sweep per target gives migration I/O the cheap
        streaming cost profile, while still occupying the device.
        """
        capacity = self.ctx.targets[target_j].capacity
        address = cursor[target_j]
        if address + size > capacity:
            address = 0
        cursor[target_j] = address + size
        return address

    def _issue(self):
        if self.cancelled:
            return
        while self._next < len(self._chunks) and self._next in self._skip:
            self._next += 1
            self.chunks_skipped += 1
        if self._next >= len(self._chunks):
            return
        index = self._next
        src, dst, size = self._chunks[index]
        self._next += 1
        self._in_flight += 1

        def write(restored):
            if restored:
                self.chunks_restored += 1
            write_lba = self._sequential_lba(self._write_cursor, dst, size)
            self.ctx.targets[dst].submit(IORequest(
                stream_id=self.stream_id, kind="write", lba=write_lba,
                size=size, obj=None, on_complete=write_done,
            ))

        def read_done(request):
            # A failed read means the source died mid-copy; fall through
            # to the restore path (write from redundancy) regardless.
            write(restored=request.failed)

        def write_done(request):
            self._in_flight -= 1
            if request.failed:
                # Destination died with the chunk in flight: the chunk
                # is not durable, so it is NOT journaled — a resume will
                # copy it again.
                self.chunks_failed += 1
            else:
                self.bytes_moved += size
                self.chunks_done += 1
                self._m_chunks.inc()
                self._m_bytes.inc(size)
                if self.journal is not None:
                    self.journal.record_chunk(index)
            if self.pace_s > 0:
                self.ctx.engine.schedule(self.pace_s, self._refill)
            else:
                self._refill()

        if self.ctx.targets[src].failed:
            # Source already dead: skip the doomed read, restore the
            # chunk straight onto the destination.
            write(restored=True)
        else:
            read_lba = self._sequential_lba(self._read_cursor, src, size)
            self.ctx.targets[src].submit(IORequest(
                stream_id=self.stream_id, kind="read", lba=read_lba,
                size=size, obj=None, on_complete=read_done,
            ))

    def _refill(self):
        self._issue()
        if self._in_flight == 0 and (self.cancelled
                                     or self._next >= len(self._chunks)):
            self._finish()

    def _finish(self):
        if self.finished:
            return
        self.finished = True
        self.finish_time = self.ctx.engine.now
        if not self.cancelled and self.on_done is not None:
            self.on_done(self)

    @property
    def elapsed_s(self):
        """Simulated copy duration (None until finished)."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time
