"""The online layout controller: monitor → detect → re-solve → migrate.

The paper's §8 (FlexVol discussion) points at using the advisor "to
guide the storage system's dynamic allocation decisions" as the system
runs.  :class:`OnlineController` is that closed loop:

1. a :class:`~repro.online.monitor.WorkloadMonitor` follows the live
   completion stream (engine observer hook) or a replayed trace;
2. every ``check_interval_s`` the controller asks the cost models for
   the current layout's predicted max utilization under the *fitted*
   workload and hands both to the
   :class:`~repro.online.drift.DriftDetector`;
3. on a drift trigger it runs a **warm-started incremental solve** —
   previous layout as the only start (``solve(..., warm_start=True)``),
   optionally pinning objects whose workload has not moved;
4. the new layout is **accepted only when it pays**: the predicted
   utilization gain, amortized over ``amortization_s`` seconds of
   future operation, must exceed the migration bill
   (:func:`~repro.core.migration.migration_cost_seconds`);
5. accepted layouts are brought online by a
   :class:`~repro.online.executor.ThrottledMigrator` — background copy
   I/O contending with foreground streams — and the placement map is
   swapped only when the copy finishes.

Every decision is recorded in an :class:`~repro.online.events.EventLog`.
"""

import time
from dataclasses import dataclass, field

from repro import units
from repro.core.layout import Layout
from repro.core.migration import migration_cost_seconds, plan_migration
from repro.core.pinning import PinningConstraints
from repro.core.problem import LayoutProblem
from repro.core.regularize import regularize
from repro.core.solver import solve
from repro.errors import SimulationError
from repro.obs import ensure_obs
from repro.online.drift import DriftDetector
from repro.online.events import EventLog
from repro.online.executor import ThrottledMigrator
from repro.online.monitor import WorkloadMonitor
from repro.storage.mapping import PlacementMap


@dataclass
class ControllerConfig:
    """Tuning knobs of the online controller.

    Attributes:
        check_interval_s: Seconds of simulated time between drift
            checks.
        monitor_window_s / monitor_halflife_s: Workload monitor
            bucketing window and decay half-life (used only when the
            controller builds its own monitor).
        util_degradation / divergence_threshold / util_ceiling /
        patience / cooldown_s: Drift detector thresholds; see
            :class:`~repro.online.drift.DriftDetector`.
        min_gain: Minimum relative predicted max-utilization
            improvement for a re-solve to be accepted.
        amortization_s: Horizon over which a utilization gain is
            credited when weighed against the migration bill: accept
            when ``gain × amortization_s ≥ migration_cost_seconds``.
        transfer_bps: Per-target copy rate assumed by the migration
            cost bound.
        pin_stable_objects: Pin (fix) the layout rows of objects whose
            total request rate moved by less than
            ``pin_rate_tolerance`` (relative), shrinking the re-solve
            and the migration churn.  If every object is stable the
            pinning is dropped — a uniform surge needs a global
            rebalance.
        max_resolves: Hard bound on accepted re-solves per run (flap
            backstop; the detector's hysteresis should make it moot).
        solver_method / restarts / regular: Passed through to the
            warm-started solve; ``regular=True`` additionally
            regularizes accepted layouts.
        migration_chunk / migration_window / migration_pace_s: Copy
            granularity and throttle of the background migrator.
    """

    check_interval_s: float = 5.0
    monitor_window_s: float = 2.0
    monitor_halflife_s: float = 20.0
    util_degradation: float = 0.25
    divergence_threshold: float = 0.5
    util_ceiling: float = 0.95
    patience: int = 2
    cooldown_s: float = 30.0
    min_gain: float = 0.05
    amortization_s: float = 300.0
    transfer_bps: float = 80 * (1 << 20)
    pin_stable_objects: bool = True
    pin_rate_tolerance: float = 0.25
    max_resolves: int = 8
    solver_method: str = "auto"
    restarts: int = 1
    regular: bool = False
    migration_chunk: int = units.DEFAULT_STRIPE_SIZE
    migration_window: int = 1
    migration_pace_s: float = 0.0

    def detector(self):
        return DriftDetector(
            util_degradation=self.util_degradation,
            divergence_threshold=self.divergence_threshold,
            util_ceiling=self.util_ceiling,
            patience=self.patience,
            cooldown_s=self.cooldown_s,
        )

    def monitor(self):
        return WorkloadMonitor(
            window_s=self.monitor_window_s,
            halflife_s=self.monitor_halflife_s,
        )


@dataclass
class _PendingMigration:
    """State carried from an accepted re-solve to migration completion."""

    layout: Layout
    fitted: list
    predicted_util: float
    migrator: object = None
    accepted_at: float = 0.0
    plan_bytes: int = 0
    span: object = None
    events: dict = field(default_factory=dict)


class OnlineController:
    """Continuously keeps a layout matched to a drifting workload.

    Args:
        targets: Sequence of :class:`~repro.core.problem.TargetSpec`
            used for re-solves (capacities may include placement
            slack, as :func:`repro.experiments.runner.build_problem`
            reserves).
        object_sizes: Mapping object name → bytes; fixes the object
            order of every re-solve.
        initial_layout: The layout currently in effect.
        solved_workloads: The workload descriptions ``initial_layout``
            was solved for (zero-rate specs are fine); the drift
            baseline.
        ctx: Optional live :class:`~repro.storage.streams.SimContext`.
            With a context, migrations run as throttled background I/O
            and the placement map is swapped on completion; without
            one (replay mode) accepted layouts take effect after the
            *estimated* migration time.
        physical_capacities: Per-target byte capacities for rebuilding
            the placement map (defaults to the live targets' device
            capacities, falling back to the solve capacities).
        stripe_size: Placement-map stripe size.
        config: A :class:`ControllerConfig`.
        monitor / detector / log: Injectable components (defaults are
            built from the config).
        obs: Optional :class:`~repro.obs.Instrumentation`.  Re-solve
            episodes are wrapped in ``online.resolve`` spans, completed
            migrations recorded as ``online.migration`` spans, decisions
            counted in ``repro_online_resolves_total``, and the event
            log (when the controller builds its own) forwards every
            event through the same tracer/metric plumbing.
    """

    def __init__(self, targets, object_sizes, initial_layout,
                 solved_workloads, ctx=None, physical_capacities=None,
                 stripe_size=units.DEFAULT_STRIPE_SIZE, config=None,
                 monitor=None, detector=None, log=None, obs=None):
        self.config = config or ControllerConfig()
        self.obs = ensure_obs(obs)
        self.targets = list(targets)
        self.object_sizes = dict(object_sizes)
        self.object_names = list(self.object_sizes)
        self.target_names = [t.name for t in self.targets]
        self.stripe_size = int(stripe_size)
        self.ctx = ctx
        if physical_capacities is not None:
            self.physical_capacities = list(physical_capacities)
        elif ctx is not None:
            self.physical_capacities = [t.capacity for t in ctx.targets]
        else:
            self.physical_capacities = [t.capacity for t in self.targets]

        self.monitor = monitor or self.config.monitor()
        self.detector = detector or self.config.detector()
        self.log = log or EventLog(obs=self.obs)

        self.layout = self._aligned(initial_layout)
        self.solved_workloads = list(solved_workloads)
        self.resolves = 0
        self.migrating = False
        self._pending = None
        self._running = False

        now = ctx.engine.now if ctx is not None else 0.0
        solved_util = self._predicted_util(self.solved_workloads, self.layout)
        self.detector.rebase(self.solved_workloads, solved_util, now)
        self.log.emit(now, "baseline", solved_util=round(solved_util, 4))

    # ------------------------------------------------------------------
    # Problem plumbing
    # ------------------------------------------------------------------

    def _aligned(self, layout):
        """Reorder a layout's rows/columns into the controller's order."""
        if (layout.object_names == self.object_names
                and layout.target_names == self.target_names):
            return layout
        fractions = layout.fractions_by_name()
        column = {name: j for j, name in enumerate(layout.target_names)}
        matrix = [
            [fractions[obj][column[t]] for t in self.target_names]
            for obj in self.object_names
        ]
        return Layout(matrix, self.object_names, self.target_names)

    def _problem(self, workloads, pinning=None):
        return LayoutProblem(
            self.object_sizes, self.targets, workloads,
            stripe_size=self.stripe_size, pinning=pinning,
        )

    def _predicted_util(self, workloads, layout):
        """Cost-model estimate of max target utilization."""
        evaluator = self._problem(workloads).evaluator()
        return float(evaluator.objective(layout.matrix))

    # ------------------------------------------------------------------
    # Live mode
    # ------------------------------------------------------------------

    def start(self):
        """Attach to the live simulation: observe completions and
        schedule periodic drift checks."""
        if self.ctx is None:
            raise SimulationError(
                "controller has no SimContext; use replay() for traces"
            )
        if self._running:
            raise SimulationError("controller already started")
        self._running = True
        self.ctx.engine.add_completion_observer(self.monitor.observe)
        self.ctx.engine.schedule(self.config.check_interval_s, self._tick)
        return self

    def stop(self):
        """Detach from the simulation; pending ticks become no-ops."""
        if self._running:
            self._running = False
            self.ctx.engine.remove_completion_observer(self.monitor.observe)

    def _tick(self):
        if not self._running:
            return
        self.check(self.ctx.engine.now)
        self.ctx.engine.schedule(self.config.check_interval_s, self._tick)

    # ------------------------------------------------------------------
    # The control loop body
    # ------------------------------------------------------------------

    def check(self, now):
        """One monitor → detect (→ re-solve → migrate) iteration."""
        self.monitor.advance(now)
        if self.migrating:
            # The copy in progress will rebase the detector when it
            # lands; re-deciding mid-migration would race with it.
            self.log.emit(now, "check", migrating=True)
            return None

        fitted = self.monitor.workloads(self.object_names)
        predicted = self._predicted_util(fitted, self.layout)
        signal = self.detector.check(now, fitted, predicted)
        self.log.emit(now, "check", **signal.as_payload())
        if signal.fired:
            self.log.emit(now, "trigger", reason=signal.reason,
                          predicted_util=round(signal.predicted_util, 4),
                          solved_util=round(signal.solved_util, 4),
                          divergence=round(signal.divergence, 4))
            self._resolve(now, fitted, predicted)
        return signal

    def _stable_pinning(self, fitted):
        """Fix rows of objects whose rate hasn't moved (shrinks the
        re-solve); returns (pinning, pinned object names)."""
        if not self.config.pin_stable_objects:
            return None, []
        solved = {w.name: w.total_rate for w in self.solved_workloads}
        stable = []
        for spec in fitted:
            old = solved.get(spec.name, 0.0)
            new = spec.total_rate
            scale = max(old, new)
            if scale <= 0 or abs(new - old) / scale <= self.config.pin_rate_tolerance:
                stable.append(spec.name)
        if not stable or len(stable) == len(self.object_names):
            return None, []
        fixed = {
            name: self.layout.row(name).tolist() for name in stable
        }
        return PinningConstraints(fixed=fixed), stable

    def _resolve(self, now, fitted, predicted):
        """Warm-started incremental solve plus the accept/reject gate."""
        if self.resolves >= self.config.max_resolves:
            self.log.emit(now, "limit", max_resolves=self.config.max_resolves)
            self.detector.hold(now)
            return

        pinning, pinned = self._stable_pinning(fitted)
        started = time.perf_counter()
        resolve_span = self.obs.tracer.start(
            "online.resolve", sim_time=round(float(now), 4),
            pinned=len(pinned),
        )
        problem = self._problem(fitted, pinning=pinning)
        result = solve(
            problem, initial=self.layout, warm_start=True,
            method=self.config.solver_method, restarts=self.config.restarts,
            obs=self.obs,
        )
        candidate = result.layout
        if self.config.regular:
            candidate = regularize(problem, candidate, obs=self.obs)
        latency = time.perf_counter() - started

        new_util = self._predicted_util(fitted, candidate)
        gain = predicted - new_util
        plan = plan_migration(self.layout, candidate, self.object_sizes)
        cost_s = migration_cost_seconds(plan,
                                        transfer_bps=self.config.transfer_bps)

        relative_gain = gain / predicted if predicted > 0 else 0.0
        worth_it = (
            plan.total_bytes > 0
            and relative_gain >= self.config.min_gain
            and gain * self.config.amortization_s >= cost_s
        )

        decision = dict(
            util_before=round(predicted, 4),
            util_after=round(new_util, 4),
            gain=round(gain, 4),
            plan_bytes=plan.total_bytes,
            migration_cost_s=round(cost_s, 3),
            pinned=len(pinned),
            method=result.method,
            decision_latency_s=round(latency, 6),
        )
        if not worth_it:
            reason = ("no-change" if plan.total_bytes == 0 else
                      "gain-below-threshold" if relative_gain < self.config.min_gain
                      else "migration-too-expensive")
            self.obs.tracer.finish(resolve_span, decision="reject",
                                   reason=reason, method=result.method)
            self.obs.metrics.counter("repro_online_resolves_total",
                                     decision="reject").inc()
            self.log.emit(now, "reject", reason=reason, **decision)
            self.detector.hold(now)
            return

        self.resolves += 1
        self.obs.tracer.finish(resolve_span, decision="accept",
                               method=result.method,
                               gain=round(gain, 4))
        self.obs.metrics.counter("repro_online_resolves_total",
                                 decision="accept").inc()
        self.log.emit(now, "accept",
                      layout={name: [round(f, 4) for f in row]
                              for name, row in
                              candidate.fractions_by_name().items()},
                      **decision)
        pending = _PendingMigration(
            layout=candidate, fitted=fitted, predicted_util=new_util,
            accepted_at=now, plan_bytes=plan.total_bytes,
            # The episode span is detached: it outlives this call and
            # must not adopt the controller's later spans as children.
            span=self.obs.tracer.start(
                "online.migration", detached=True,
                accepted_at=round(float(now), 4),
                plan_bytes=plan.total_bytes,
            ),
        )
        if self.ctx is not None:
            self.migrating = True
            self._pending = pending
            pending.migrator = ThrottledMigrator(
                self.ctx, plan,
                chunk=self.config.migration_chunk,
                window=self.config.migration_window,
                pace_s=self.config.migration_pace_s,
                on_done=self._migration_done,
                metrics=self.obs.metrics,
            ).start()
        else:
            # Replay / advisory mode: no simulator to copy through; the
            # layout takes effect after the estimated migration time.
            finish = now + cost_s
            self._install(pending, finish, bytes_moved=plan.total_bytes,
                          elapsed_s=cost_s, virtual=True)

    def _migration_done(self, migrator):
        pending = self._pending
        self._pending = None
        self.migrating = False
        placement = PlacementMap(
            self.object_sizes, pending.layout.fractions_by_name(),
            self.physical_capacities, stripe_size=self.stripe_size,
        )
        self.ctx.set_placement(placement)
        self._install(pending, self.ctx.engine.now,
                      bytes_moved=migrator.bytes_moved,
                      elapsed_s=migrator.elapsed_s, virtual=False)

    def _install(self, pending, now, bytes_moved, elapsed_s, virtual):
        self.layout = pending.layout
        self.solved_workloads = pending.fitted
        self.detector.rebase(pending.fitted, pending.predicted_util, now)
        if pending.span is not None:
            self.obs.tracer.finish(
                pending.span, bytes_moved=bytes_moved,
                sim_elapsed_s=round(float(elapsed_s), 4), virtual=virtual,
            )
        self.log.emit(now, "migrated",
                      bytes_moved=bytes_moved,
                      elapsed_s=round(float(elapsed_s), 4),
                      virtual=virtual,
                      accepted_at=round(pending.accepted_at, 4))

    # ------------------------------------------------------------------
    # Replay mode
    # ------------------------------------------------------------------

    def replay(self, records, end_time=None):
        """Drive the loop from an archived trace instead of a live run.

        Records are fed through the monitor in timestamp order with a
        drift check every ``check_interval_s`` of trace time; accepted
        layouts take effect virtually (after the estimated migration
        time).  Returns the event log.
        """
        records = sorted(
            (r for r in records), key=lambda r: r.finish_time
        )
        if not records:
            return self.log
        next_check = records[0].finish_time + self.config.check_interval_s
        for record in records:
            while record.finish_time >= next_check:
                self.check(next_check)
                next_check += self.config.check_interval_s
            self.monitor.observe(record)
        last = end_time if end_time is not None else records[-1].finish_time
        self.check(max(last, next_check - self.config.check_interval_s))
        return self.log
