"""The online layout controller: monitor → detect → re-solve → migrate.

The paper's §8 (FlexVol discussion) points at using the advisor "to
guide the storage system's dynamic allocation decisions" as the system
runs.  :class:`OnlineController` is that closed loop:

1. a :class:`~repro.online.monitor.WorkloadMonitor` follows the live
   completion stream (engine observer hook) or a replayed trace;
2. every ``check_interval_s`` the controller asks the cost models for
   the current layout's predicted max utilization under the *fitted*
   workload and hands both to the
   :class:`~repro.online.drift.DriftDetector`;
3. on a drift trigger it runs a **warm-started incremental solve** —
   previous layout as the only start (``solve(..., warm_start=True)``),
   optionally pinning objects whose workload has not moved;
4. the new layout is **accepted only when it pays**: the predicted
   utilization gain, amortized over ``amortization_s`` seconds of
   future operation, must exceed the migration bill
   (:func:`~repro.core.migration.migration_cost_seconds`);
5. accepted layouts are brought online by a
   :class:`~repro.online.executor.ThrottledMigrator` — background copy
   I/O contending with foreground streams — and the placement map is
   swapped only when the copy finishes.

Every decision is recorded in an :class:`~repro.online.events.EventLog`.
"""

import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro import units
from repro.core.layout import Layout
from repro.core.migration import (
    MigrationPlan,
    Move,
    migration_cost_seconds,
    plan_migration,
)
from repro.core.pinning import PinningConstraints
from repro.core.problem import LayoutProblem, TargetSpec
from repro.core.regularize import regularize
from repro.core.solver import solve
from repro.core.watchdog import solve_with_watchdog
from repro.errors import SimulationError
from repro.faults.detector import FailureDetector
from repro.faults.journal import MigrationJournal
from repro.obs import ensure_obs
from repro.workload.spec import ObjectWorkload
from repro.online.drift import DriftDetector
from repro.online.events import EventLog
from repro.online.executor import ThrottledMigrator
from repro.online.monitor import WorkloadMonitor
from repro.storage.mapping import PlacementMap


@dataclass
class ControllerConfig:
    """Tuning knobs of the online controller.

    Attributes:
        check_interval_s: Seconds of simulated time between drift
            checks.
        monitor_window_s / monitor_halflife_s: Workload monitor
            bucketing window and decay half-life (used only when the
            controller builds its own monitor).
        util_degradation / divergence_threshold / util_ceiling /
        patience / cooldown_s: Drift detector thresholds; see
            :class:`~repro.online.drift.DriftDetector`.
        min_gain: Minimum relative predicted max-utilization
            improvement for a re-solve to be accepted.
        amortization_s: Horizon over which a utilization gain is
            credited when weighed against the migration bill: accept
            when ``gain × amortization_s ≥ migration_cost_seconds``.
        transfer_bps: Per-target copy rate assumed by the migration
            cost bound.
        pin_stable_objects: Pin (fix) the layout rows of objects whose
            total request rate moved by less than
            ``pin_rate_tolerance`` (relative), shrinking the re-solve
            and the migration churn.  If every object is stable the
            pinning is dropped — a uniform surge needs a global
            rebalance.
        max_resolves: Hard bound on accepted re-solves per run (flap
            backstop; the detector's hysteresis should make it moot).
        solver_method / restarts / regular: Passed through to the
            warm-started solve; ``regular=True`` additionally
            regularizes accepted layouts.
        migration_chunk / migration_window / migration_pace_s: Copy
            granularity and throttle of the background migrator.
        solve_budget_s: Optional wall-clock watchdog budget for drift
            re-solves; when set, the solve falls back portfolio →
            partitioned → serial → greedy instead of overrunning (see
            :mod:`repro.core.watchdog`).
        emergency_budget_s: Wall-clock watchdog budget for emergency
            (evacuation) re-solves — these always run under the
            watchdog because the workload is bleeding errors while the
            solver thinks.
        degrade_threshold / capacity_threshold: Failure-detector
            thresholds (see
            :class:`~repro.faults.detector.FailureDetector`); used when
            :meth:`OnlineController.attach_faults` builds the detector.
        journal_dir: Directory for crash-safe migration journals.  When
            set (and running live), every accepted migration writes a
            chunk-level journal there and
            :meth:`OnlineController.resume_migration` can finish an
            interrupted copy after a crash.
    """

    check_interval_s: float = 5.0
    monitor_window_s: float = 2.0
    monitor_halflife_s: float = 20.0
    util_degradation: float = 0.25
    divergence_threshold: float = 0.5
    util_ceiling: float = 0.95
    patience: int = 2
    cooldown_s: float = 30.0
    min_gain: float = 0.05
    amortization_s: float = 300.0
    transfer_bps: float = 80 * (1 << 20)
    pin_stable_objects: bool = True
    pin_rate_tolerance: float = 0.25
    max_resolves: int = 8
    solver_method: str = "auto"
    restarts: int = 1
    regular: bool = False
    migration_chunk: int = units.DEFAULT_STRIPE_SIZE
    migration_window: int = 1
    migration_pace_s: float = 0.0
    solve_budget_s: float = None
    emergency_budget_s: float = 5.0
    degrade_threshold: float = 2.0
    capacity_threshold: float = 0.8
    journal_dir: str = None

    def detector(self):
        return DriftDetector(
            util_degradation=self.util_degradation,
            divergence_threshold=self.divergence_threshold,
            util_ceiling=self.util_ceiling,
            patience=self.patience,
            cooldown_s=self.cooldown_s,
        )

    def monitor(self):
        return WorkloadMonitor(
            window_s=self.monitor_window_s,
            halflife_s=self.monitor_halflife_s,
        )


@dataclass
class _PendingMigration:
    """State carried from an accepted re-solve to migration completion."""

    layout: Layout
    fitted: list
    predicted_util: float
    migrator: object = None
    accepted_at: float = 0.0
    plan_bytes: int = 0
    span: object = None
    journal: object = None
    events: dict = field(default_factory=dict)


class OnlineController:
    """Continuously keeps a layout matched to a drifting workload.

    Args:
        targets: Sequence of :class:`~repro.core.problem.TargetSpec`
            used for re-solves (capacities may include placement
            slack, as :func:`repro.experiments.runner.build_problem`
            reserves).
        object_sizes: Mapping object name → bytes; fixes the object
            order of every re-solve.
        initial_layout: The layout currently in effect.
        solved_workloads: The workload descriptions ``initial_layout``
            was solved for (zero-rate specs are fine); the drift
            baseline.
        ctx: Optional live :class:`~repro.storage.streams.SimContext`.
            With a context, migrations run as throttled background I/O
            and the placement map is swapped on completion; without
            one (replay mode) accepted layouts take effect after the
            *estimated* migration time.
        physical_capacities: Per-target byte capacities for rebuilding
            the placement map (defaults to the live targets' device
            capacities, falling back to the solve capacities).
        stripe_size: Placement-map stripe size.
        config: A :class:`ControllerConfig`.
        monitor / detector / log: Injectable components (defaults are
            built from the config).
        obs: Optional :class:`~repro.obs.Instrumentation`.  Re-solve
            episodes are wrapped in ``online.resolve`` spans, completed
            migrations recorded as ``online.migration`` spans, decisions
            counted in ``repro_online_resolves_total``, and the event
            log (when the controller builds its own) forwards every
            event through the same tracer/metric plumbing.
    """

    def __init__(self, targets, object_sizes, initial_layout,
                 solved_workloads, ctx=None, physical_capacities=None,
                 stripe_size=units.DEFAULT_STRIPE_SIZE, config=None,
                 monitor=None, detector=None, log=None, obs=None):
        self.config = config or ControllerConfig()
        self.obs = ensure_obs(obs)
        self.targets = list(targets)
        self.object_sizes = dict(object_sizes)
        self.object_names = list(self.object_sizes)
        self.target_names = [t.name for t in self.targets]
        self.stripe_size = int(stripe_size)
        self.ctx = ctx
        if physical_capacities is not None:
            self.physical_capacities = list(physical_capacities)
        elif ctx is not None:
            self.physical_capacities = [t.capacity for t in ctx.targets]
        else:
            self.physical_capacities = [t.capacity for t in self.targets]

        self.monitor = monitor or self.config.monitor()
        self.detector = detector or self.config.detector()
        self.log = log or EventLog(obs=self.obs)

        self.layout = self._aligned(initial_layout)
        self.solved_workloads = list(solved_workloads)
        self.resolves = 0
        self.migrating = False
        self._pending = None
        self._running = False

        self.faults = None
        self.failure_detector = None
        self.emergency_resolves = 0
        self._solver_chaos = None
        self._journal_seq = 0

        now = ctx.engine.now if ctx is not None else 0.0
        solved_util = self._predicted_util(self.solved_workloads, self.layout)
        self.detector.rebase(self.solved_workloads, solved_util, now)
        self.log.emit(now, "baseline", solved_util=round(solved_util, 4))

    # ------------------------------------------------------------------
    # Problem plumbing
    # ------------------------------------------------------------------

    def _aligned(self, layout):
        """Reorder a layout's rows/columns into the controller's order."""
        if (layout.object_names == self.object_names
                and layout.target_names == self.target_names):
            return layout
        fractions = layout.fractions_by_name()
        column = {name: j for j, name in enumerate(layout.target_names)}
        matrix = [
            [fractions[obj][column[t]] for t in self.target_names]
            for obj in self.object_names
        ]
        return Layout(matrix, self.object_names, self.target_names)

    def _problem(self, workloads, pinning=None):
        return LayoutProblem(
            self.object_sizes, self._effective_targets(), workloads,
            stripe_size=self.stripe_size, pinning=pinning,
        )

    def _effective_targets(self):
        """Solve-time target specs adjusted for current target health.

        Healthy targets pass through; a failed target keeps its column
        (layouts stay comparable, migrations plannable) but shrinks to
        a 1-byte husk — :class:`~repro.core.problem.LayoutProblem`
        rejects zero capacities, and the capacity constraint then
        forces the solver to evacuate it; a degraded target's cost
        model is scaled by the observed slowdown; capacity loss shrinks
        the usable bytes.
        """
        if self.faults is None:
            return self.targets
        specs = []
        for spec in self.targets:
            health = self.faults.health.get(spec.name)
            if health is None or health.healthy:
                specs.append(spec)
            elif not health.alive:
                specs.append(TargetSpec(spec.name, 1, spec.model))
            else:
                capacity = max(1, int(spec.capacity * health.capacity_factor))
                model = spec.model
                if health.service_scale != 1.0:
                    model = model.scaled(health.service_scale)
                specs.append(TargetSpec(spec.name, capacity, model))
        return specs

    def _dead_targets(self):
        """Names of targets currently failed (empty without faults)."""
        if self.faults is None:
            return []
        return [name for name, health in self.faults.health.items()
                if not health.alive]

    def _predicted_util(self, workloads, layout):
        """Cost-model estimate of max target utilization."""
        evaluator = self._problem(workloads).evaluator()
        return float(evaluator.objective(layout.matrix))

    # ------------------------------------------------------------------
    # Live mode
    # ------------------------------------------------------------------

    def start(self):
        """Attach to the live simulation: observe completions and
        schedule periodic drift checks."""
        if self.ctx is None:
            raise SimulationError(
                "controller has no SimContext; use replay() for traces"
            )
        if self._running:
            raise SimulationError("controller already started")
        self._running = True
        self.ctx.engine.add_completion_observer(self.monitor.observe)
        self.ctx.engine.schedule(self.config.check_interval_s, self._tick)
        return self

    def stop(self):
        """Detach from the simulation; pending ticks become no-ops."""
        if self._running:
            self._running = False
            self.ctx.engine.remove_completion_observer(self.monitor.observe)

    def _tick(self):
        if not self._running:
            return
        self.check(self.ctx.engine.now)
        self.ctx.engine.schedule(self.config.check_interval_s, self._tick)

    # ------------------------------------------------------------------
    # The control loop body
    # ------------------------------------------------------------------

    def check(self, now):
        """One monitor → detect (→ re-solve → migrate) iteration."""
        self.monitor.advance(now)
        if self.migrating:
            # The copy in progress will rebase the detector when it
            # lands; re-deciding mid-migration would race with it.
            self.log.emit(now, "check", migrating=True)
            return None

        if self.target_names and len(self._dead_targets()) == len(
            self.target_names
        ):
            # Every target is down: there is nowhere to place anything,
            # so a re-solve cannot help. Keep checking; a repair event
            # will bring capacity back.
            self.log.emit(now, "check", all_targets_dead=True)
            return None

        fitted = self.monitor.workloads(self.object_names)
        predicted = self._predicted_util(fitted, self.layout)
        signal = self.detector.check(now, fitted, predicted)
        self.log.emit(now, "check", **signal.as_payload())
        if signal.fired:
            self.log.emit(now, "trigger", reason=signal.reason,
                          predicted_util=round(signal.predicted_util, 4),
                          solved_util=round(signal.solved_util, 4),
                          divergence=round(signal.divergence, 4))
            self._resolve(now, fitted, predicted)
        return signal

    def _stable_pinning(self, fitted):
        """Fix rows of objects whose rate hasn't moved (shrinks the
        re-solve); returns (pinning, pinned object names)."""
        if not self.config.pin_stable_objects:
            return None, []
        solved = {w.name: w.total_rate for w in self.solved_workloads}
        dead = set(self._dead_targets())
        dead_cols = [j for j, name in enumerate(self.target_names)
                     if name in dead]
        stable = []
        for spec in fitted:
            if dead_cols and any(
                self.layout.row(spec.name)[j] > 1e-9 for j in dead_cols
            ):
                # A row touching a dead target must stay free so the
                # solve can move it off; pinning it would freeze data
                # on a target that no longer exists.
                continue
            old = solved.get(spec.name, 0.0)
            new = spec.total_rate
            scale = max(old, new)
            if scale <= 0 or abs(new - old) / scale <= self.config.pin_rate_tolerance:
                stable.append(spec.name)
        if not stable or len(stable) == len(self.object_names):
            return None, []
        fixed = {
            name: self.layout.row(name).tolist() for name in stable
        }
        return PinningConstraints(fixed=fixed), stable

    def _resolve(self, now, fitted, predicted):
        """Warm-started incremental solve plus the accept/reject gate."""
        if self.resolves >= self.config.max_resolves:
            self.log.emit(now, "limit", max_resolves=self.config.max_resolves)
            self.detector.hold(now)
            return

        pinning, pinned = self._stable_pinning(fitted)
        started = time.perf_counter()
        resolve_span = self.obs.tracer.start(
            "online.resolve", sim_time=round(float(now), 4),
            pinned=len(pinned),
        )
        problem = self._problem(fitted, pinning=pinning)
        result, rung = self._run_solve(problem)
        candidate = self._aligned(result.layout)
        if self.config.regular:
            candidate = regularize(problem, candidate, obs=self.obs)
        latency = time.perf_counter() - started

        new_util = self._predicted_util(fitted, candidate)
        gain = predicted - new_util
        plan = plan_migration(self.layout, candidate, self.object_sizes)
        cost_s = migration_cost_seconds(plan,
                                        transfer_bps=self.config.transfer_bps)

        relative_gain = gain / predicted if predicted > 0 else 0.0
        worth_it = (
            plan.total_bytes > 0
            and relative_gain >= self.config.min_gain
            and gain * self.config.amortization_s >= cost_s
        )

        decision = dict(
            util_before=round(predicted, 4),
            util_after=round(new_util, 4),
            gain=round(gain, 4),
            plan_bytes=plan.total_bytes,
            migration_cost_s=round(cost_s, 3),
            pinned=len(pinned),
            method=result.method,
            decision_latency_s=round(latency, 6),
        )
        if rung:
            decision["watchdog_rung"] = rung
        if not worth_it:
            reason = ("no-change" if plan.total_bytes == 0 else
                      "gain-below-threshold" if relative_gain < self.config.min_gain
                      else "migration-too-expensive")
            self.obs.tracer.finish(resolve_span, decision="reject",
                                   reason=reason, method=result.method)
            self.obs.metrics.counter("repro_online_resolves_total",
                                     decision="reject").inc()
            self.log.emit(now, "reject", reason=reason, **decision)
            self.detector.hold(now)
            return

        self.resolves += 1
        self.obs.tracer.finish(resolve_span, decision="accept",
                               method=result.method,
                               gain=round(gain, 4))
        self.obs.metrics.counter("repro_online_resolves_total",
                                 decision="accept").inc()
        self.log.emit(now, "accept",
                      layout={name: [round(f, 4) for f in row]
                              for name, row in
                              candidate.fractions_by_name().items()},
                      **decision)
        pending = _PendingMigration(
            layout=candidate, fitted=fitted, predicted_util=new_util,
            accepted_at=now, plan_bytes=plan.total_bytes,
            # The episode span is detached: it outlives this call and
            # must not adopt the controller's later spans as children.
            span=self.obs.tracer.start(
                "online.migration", detached=True,
                accepted_at=round(float(now), 4),
                plan_bytes=plan.total_bytes,
            ),
        )
        if self.ctx is not None:
            self.migrating = True
            self._pending = pending
            pending.journal = self._open_journal(plan, candidate, fitted,
                                                 new_util, now)
            pending.migrator = ThrottledMigrator(
                self.ctx, plan,
                chunk=self.config.migration_chunk,
                window=self.config.migration_window,
                pace_s=self.config.migration_pace_s,
                on_done=self._migration_done,
                metrics=self.obs.metrics,
                journal=pending.journal,
            ).start()
        else:
            # Replay / advisory mode: no simulator to copy through; the
            # layout takes effect after the estimated migration time.
            finish = now + cost_s
            self._install(pending, finish, bytes_moved=plan.total_bytes,
                          elapsed_s=cost_s, virtual=True)

    def _run_solve(self, problem):
        """Run one drift re-solve; returns ``(SolveResult, rung)``.

        The solve itself is a hook: the default runs in-process (under
        the watchdog when a budget is configured), while the serving
        layer's :class:`~repro.serve.tenant.ServedController` overrides
        it to route the work through the shared, fairness-scheduled
        solver pool.
        """
        if self.config.solve_budget_s is not None:
            watchdog = solve_with_watchdog(
                problem, initial=self.layout, warm_start=True,
                budget_s=self.config.solve_budget_s,
                method=self.config.solver_method,
                restarts=self.config.restarts,
                chaos_hook=self._solver_chaos, obs=self.obs,
            )
            return watchdog.result, watchdog.rung
        return solve(
            problem, initial=self.layout, warm_start=True,
            method=self.config.solver_method,
            restarts=self.config.restarts,
            obs=self.obs,
        ), ""

    def _journal_meta(self, candidate, fitted, predicted_util, now):
        """The journal ``meta`` block: everything
        :meth:`resume_migration` needs to rebuild the pending state in
        a fresh controller."""
        return {
            "layout": {name: [float(f) for f in row] for name, row in
                       candidate.fractions_by_name().items()},
            "objects": list(self.object_names),
            "targets": list(self.target_names),
            "predicted_util": float(predicted_util),
            "accepted_at": float(now),
            "fitted": [asdict(w) for w in fitted],
        }

    def _open_journal(self, plan, candidate, fitted, predicted_util, now):
        """Create a crash-recovery journal for an accepted migration.

        The ``meta`` block carries everything
        :meth:`resume_migration` needs to rebuild the pending state in
        a fresh controller: the accepted layout, the fitted workloads
        it was solved for, and the accept-time bookkeeping.
        """
        if self.config.journal_dir is None or self.ctx is None:
            return None
        os.makedirs(self.config.journal_dir, exist_ok=True)
        self._journal_seq += 1
        path = os.path.join(self.config.journal_dir,
                            "migration-%04d.jsonl" % self._journal_seq)
        meta = self._journal_meta(candidate, fitted, predicted_util, now)
        return MigrationJournal.create(path, plan,
                                       self.config.migration_chunk,
                                       meta=meta)

    def _migration_done(self, migrator):
        pending = self._pending
        self._pending = None
        self.migrating = False
        placement = PlacementMap(
            self.object_sizes, pending.layout.fractions_by_name(),
            self.physical_capacities, stripe_size=self.stripe_size,
        )
        self.ctx.set_placement(placement)
        if pending.journal is not None:
            # The placement swap is the migration's commit point.
            pending.journal.record_commit()
            pending.journal.close()
        self._install(pending, self.ctx.engine.now,
                      bytes_moved=migrator.bytes_moved,
                      elapsed_s=migrator.elapsed_s, virtual=False)

    def _install(self, pending, now, bytes_moved, elapsed_s, virtual):
        self.layout = pending.layout
        self.solved_workloads = pending.fitted
        self.detector.rebase(pending.fitted, pending.predicted_util, now)
        if pending.span is not None:
            self.obs.tracer.finish(
                pending.span, bytes_moved=bytes_moved,
                sim_elapsed_s=round(float(elapsed_s), 4), virtual=virtual,
            )
        self.log.emit(now, "migrated",
                      bytes_moved=bytes_moved,
                      elapsed_s=round(float(elapsed_s), 4),
                      virtual=virtual,
                      accepted_at=round(pending.accepted_at, 4))

    # ------------------------------------------------------------------
    # Faults: degraded-mode operation and emergency evacuation
    # ------------------------------------------------------------------

    def attach_faults(self, injector):
        """Wire a :class:`~repro.faults.injector.FaultInjector` in.

        Every fault event is logged; target health feeds the effective
        problem of every subsequent re-solve (degraded-mode planning);
        and the failure detector's emergencies trigger evacuation
        re-solves that bypass the drift detector's patience/cooldown
        gates.  With a live context the injector is armed on the
        engine; in replay mode :meth:`replay` polls it instead.
        """
        self.faults = injector
        self._solver_chaos = injector.solver_hook()
        self.failure_detector = FailureDetector(
            on_emergency=self._on_emergency,
            on_recovery=self._on_recovery,
            degrade_threshold=self.config.degrade_threshold,
            capacity_threshold=self.config.capacity_threshold,
            obs=self.obs,
        )
        injector.add_listener(self._observe_fault)
        if self.ctx is not None:
            injector.arm(self.ctx.engine)
        return self

    def _now(self, event=None):
        if self.ctx is not None:
            return self.ctx.engine.now
        return event.time if event is not None else 0.0

    def _observe_fault(self, event, health):
        now = self._now(event)
        self.log.emit(now, "fault", fault=event.kind, target=event.target,
                      state=health[event.target].state
                      if event.target in health else None)
        self.failure_detector.observe(event, health)

    def _poll_faults(self, now):
        """Replay mode: apply fault events the trace clock has reached."""
        if self.faults is not None and self.ctx is None:
            self.faults.pop_due(now)

    def _fitted(self, now):
        """Freshest workload estimate, falling back to the solved one.

        A fault can strike before the monitor has seen a single
        completion (or after a stall silenced the stream); planning an
        evacuation against an all-zero workload would scatter data
        arbitrarily, so the last solved workloads stand in.
        """
        self.monitor.advance(now)
        fitted = self.monitor.workloads(self.object_names)
        if any(w.total_rate > 0 for w in fitted):
            return fitted
        return list(self.solved_workloads)

    def _on_emergency(self, event, health, reason):
        now = self._now(event)
        self.obs.metrics.counter("repro_online_emergencies_total",
                                 reason=reason).inc()
        self.log.emit(now, "emergency", reason=reason, target=event.target)
        self._emergency_resolve(now, reason, event)

    def _on_recovery(self, event, health):
        now = self._now(event)
        self.log.emit(now, "recovered", target=event.target)
        if self.migrating:
            # The copy in flight rebases the detector when it lands;
            # the drift loop will then notice the recovered capacity.
            return
        # Recovery is not an emergency: moving load back onto the
        # repaired target goes through the normal economic gate.
        fitted = self._fitted(now)
        predicted = self._predicted_util(fitted, self.layout)
        self._resolve(now, fitted, predicted)

    def _projected_layout(self, problem, dead):
        """Current layout with dead columns zeroed — the evacuation
        solve's warm start.

        Each row's mass is renormalized onto the alive targets; a row
        that lived entirely on dead targets is spread equally over the
        alive ones.  Returns None when the projection is not a valid
        layout for ``problem`` (pin bounds or alive capacity cannot
        absorb the evacuated data), in which case the watchdog starts
        from greedy construction instead.
        """
        dead_cols = [j for j, name in enumerate(self.target_names)
                     if name in dead]
        alive_cols = [j for j in range(len(self.target_names))
                      if j not in dead_cols]
        if not alive_cols:
            return None
        matrix = self.layout.matrix.copy()
        matrix[:, dead_cols] = 0.0
        for i in range(matrix.shape[0]):
            total = matrix[i].sum()
            if total <= 0:
                matrix[i, alive_cols] = 1.0 / len(alive_cols)
            else:
                matrix[i] /= total
        try:
            layout = problem.make_layout(matrix)
            problem.validate_layout(layout)
            return layout
        except Exception:
            return None

    def _emergency_resolve(self, now, reason, event):
        """Re-solve around a failed/degraded target, bypassing every
        drift gate: no patience, no cooldown, no accept economics —
        staying on a dead target costs errors, not just utilization."""
        span = self.obs.tracer.start(
            "online.emergency", reason=reason, target=event.target,
            sim_time=round(float(now), 4),
        )
        if self.migrating and self._pending is not None:
            stale = self._pending
            if stale.migrator is not None:
                stale.migrator.cancel()
            if stale.journal is not None:
                stale.journal.close()
            if stale.span is not None:
                self.obs.tracer.finish(stale.span, cancelled=True)
            self.log.emit(now, "migration-cancelled", reason=reason)
            self._pending = None
            self.migrating = False

        fitted = self._fitted(now)
        dead = set(self._dead_targets())
        alive = [name for name in self.target_names if name not in dead]
        if not alive:
            self.log.emit(now, "emergency-unsolvable",
                          reason="no-targets-alive")
            self.obs.tracer.finish(span, outcome="unsolvable")
            return

        # Evacuation pinning: objects touching a dead target may only
        # use alive targets; everything else is pinned in place so the
        # solve (and the copy) is exactly the evacuation, no more.
        pinning = None
        if dead:
            dead_cols = [j for j, name in enumerate(self.target_names)
                         if name in dead]
            allowed, fixed = {}, {}
            for obj in self.object_names:
                row = self.layout.row(obj)
                if any(row[j] > 1e-9 for j in dead_cols):
                    allowed[obj] = list(alive)
                else:
                    fixed[obj] = [float(f) for f in row]
            if allowed:
                if fixed and len(fixed) < len(self.object_names):
                    pinning = PinningConstraints(allowed=allowed,
                                                 fixed=fixed)
                else:
                    pinning = PinningConstraints(allowed=allowed)

        started = time.perf_counter()
        problem = self._problem(fitted, pinning=pinning)
        initial = self._projected_layout(problem, dead)
        watchdog = solve_with_watchdog(
            problem, initial=initial,
            budget_s=self.config.emergency_budget_s,
            method=self.config.solver_method,
            restarts=self.config.restarts,
            warm_start=initial is not None,
            chaos_hook=self._solver_chaos, obs=self.obs,
        )
        candidate = self._aligned(watchdog.result.layout)
        if self.config.regular:
            candidate = self._aligned(
                regularize(problem, watchdog.result.layout, obs=self.obs)
            )
        new_util = float(problem.evaluator().objective(candidate.matrix))
        plan = plan_migration(self.layout, candidate, self.object_sizes)
        if dead:
            # Evacuation first: chunks leaving dead targets copy before
            # load-balancing shuffles between healthy ones.
            plan.moves.sort(key=lambda m: (m.source not in dead, -m.bytes))
        cost_s = migration_cost_seconds(
            plan, transfer_bps=self.config.transfer_bps
        )

        self.emergency_resolves += 1
        self.obs.metrics.counter("repro_online_resolves_total",
                                 decision="emergency").inc()
        self.obs.tracer.finish(
            span, rung=watchdog.rung, degraded=watchdog.degraded,
            plan_bytes=plan.total_bytes,
            latency_s=round(time.perf_counter() - started, 6),
        )
        self.log.emit(now, "evacuate", reason=reason, target=event.target,
                      util_after=round(new_util, 4),
                      plan_bytes=plan.total_bytes,
                      watchdog_rung=watchdog.rung,
                      degraded=watchdog.degraded,
                      layout={name: [round(f, 4) for f in row]
                              for name, row in
                              candidate.fractions_by_name().items()})

        pending = _PendingMigration(
            layout=candidate, fitted=fitted, predicted_util=new_util,
            accepted_at=now, plan_bytes=plan.total_bytes,
            span=self.obs.tracer.start(
                "online.migration", detached=True, emergency=True,
                accepted_at=round(float(now), 4),
                plan_bytes=plan.total_bytes,
            ),
        )
        if self.ctx is not None and plan.total_bytes > 0:
            self.migrating = True
            self._pending = pending
            pending.journal = self._open_journal(plan, candidate, fitted,
                                                 new_util, now)
            pending.migrator = ThrottledMigrator(
                self.ctx, plan,
                chunk=self.config.migration_chunk,
                window=self.config.migration_window,
                pace_s=self.config.migration_pace_s,
                on_done=self._migration_done,
                metrics=self.obs.metrics,
                journal=pending.journal,
            ).start()
        else:
            finish = now if self.ctx is not None else now + cost_s
            self._install(pending, finish, bytes_moved=plan.total_bytes,
                          elapsed_s=cost_s, virtual=True)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def resume_migration(self, journal_path):
        """Finish a migration whose process died mid-copy.

        Rebuilds the accepted layout, the fitted workloads, and the
        movement plan from the journal's meta block, then re-runs the
        migrator with the journal attached — chunks already recorded
        are skipped, so only the tail of the copy happens again.  A
        journal that already holds its commit record needs nothing (the
        placement swap happened before the crash).  Returns the loaded
        journal.
        """
        journal = MigrationJournal.load(journal_path)
        if journal.committed:
            return journal
        meta = journal.meta
        layout = self._aligned(Layout(
            [meta["layout"][obj] for obj in meta["objects"]],
            meta["objects"], meta["targets"],
        ))
        fitted = [ObjectWorkload(**spec) for spec in meta.get("fitted", [])]
        if not fitted:
            fitted = list(self.solved_workloads)
        moves = [
            Move(obj=m["obj"], source=m["source"],
                 destination=m["destination"], bytes=int(m["bytes"]))
            for m in journal.moves
        ]
        reads, writes = {}, {}
        for move in moves:
            reads[move.source] = reads.get(move.source, 0) + move.bytes
            writes[move.destination] = (
                writes.get(move.destination, 0) + move.bytes
            )
        plan = MigrationPlan(
            moves=moves, total_bytes=sum(m.bytes for m in moves),
            bytes_read=reads, bytes_written=writes,
        )
        now = self._now()
        self.log.emit(now, "resume",
                      journal=os.path.basename(str(journal_path)),
                      chunks_done=len(journal.done),
                      chunks_total=journal.total_chunks)
        pending = _PendingMigration(
            layout=layout, fitted=fitted,
            predicted_util=float(meta.get("predicted_util", 0.0)),
            accepted_at=float(meta.get("accepted_at", now)),
            plan_bytes=plan.total_bytes, journal=journal,
        )
        if self.ctx is not None:
            self.migrating = True
            self._pending = pending
            pending.migrator = ThrottledMigrator(
                self.ctx, plan, chunk=journal.chunk,
                window=self.config.migration_window,
                pace_s=self.config.migration_pace_s,
                on_done=self._migration_done,
                metrics=self.obs.metrics,
                journal=journal,
            ).start()
        else:
            cost_s = migration_cost_seconds(
                plan, transfer_bps=self.config.transfer_bps
            )
            self._install(pending, now + cost_s,
                          bytes_moved=plan.total_bytes, elapsed_s=cost_s,
                          virtual=True)
        return journal

    # ------------------------------------------------------------------
    # Replay mode
    # ------------------------------------------------------------------

    def replay(self, records, end_time=None, faults=None):
        """Drive the loop from an archived trace instead of a live run.

        Records are fed through the monitor in timestamp order with a
        drift check every ``check_interval_s`` of trace time; accepted
        layouts take effect virtually (after the estimated migration
        time).  With ``faults`` (a
        :class:`~repro.faults.injector.FaultInjector`), fault events
        are applied as the trace clock passes their times, so chaos
        scenarios replay deterministically.  Returns the event log.
        """
        if faults is not None and faults is not self.faults:
            self.attach_faults(faults)
        records = sorted(
            (r for r in records), key=lambda r: r.finish_time
        )
        if not records:
            return self.log
        next_check = records[0].finish_time + self.config.check_interval_s
        for record in records:
            while record.finish_time >= next_check:
                self._poll_faults(next_check)
                self.check(next_check)
                next_check += self.config.check_interval_s
            self._poll_faults(record.finish_time)
            self.monitor.observe(record)
        last = end_time if end_time is not None else records[-1].finish_time
        last = max(last, next_check - self.config.check_interval_s)
        self._poll_faults(last)
        self.check(last)
        return self.log
