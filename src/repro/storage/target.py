"""Storage target: a device plus per-unit queues and accounting.

A target is the unit of layout in the paper — "independent containers into
which data can be stored".  It owns the device, routes incoming requests
to device units, queues them when all servers of a unit are busy, applies
the unit's scheduling policy, and records completions into an optional
trace for the workload analyzer.  It also accumulates per-unit busy time,
which gives the *measured* utilization that the advisor's estimated
utilizations (paper Figure 13) are judged against.
"""

from repro.errors import SimulationError
from repro.storage.request import CompletionRecord, IORequest


class _UnitServer:
    """Queue + in-service bookkeeping for one device unit."""

    #: A queued head-of-line request may be bypassed by the scheduling
    #: policy at most this many times before it is served unconditionally
    #: (prevents LOOK from starving far-away requests).
    BYPASS_LIMIT = 2

    def __init__(self, unit):
        self.unit = unit
        self.queue = []
        self.in_service = 0
        self.busy_time = 0.0
        self.head_bypassed = 0

    @property
    def free(self):
        return self.in_service < self.unit.parallelism


class StorageTarget:
    """A storage target backed by a :class:`~repro.storage.device.Device`.

    Besides normal operation the target models the degraded states a
    production array exposes (and the fault injector of
    :mod:`repro.faults` drives): a **failed** target errors every
    submission after :data:`ERROR_LATENCY_S` instead of serving it, a
    **stalled** target queues arrivals but dispatches nothing until the
    stall window passes, and a **degraded** target serves everything
    slowed by ``service_scale``.

    Args:
        device: The backing device; its capacity is the target capacity.
        engine: The simulation engine; may be attached later via
            :meth:`bind`.
        trace: Optional list that receives a
            :class:`~repro.storage.request.CompletionRecord` per completed
            request.
    """

    #: Time a request submitted to a failed target takes to come back
    #: with ``failed=True`` (the host's error-return latency; also what
    #: keeps a retrying closed-loop stream from spinning at zero cost).
    ERROR_LATENCY_S = 0.01

    def __init__(self, device, engine=None, trace=None):
        self.device = device
        self.engine = engine
        self.trace = trace
        self._servers = [_UnitServer(unit) for unit in device.units]
        self.completed = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.failed = False
        self.errors = 0
        self.service_scale = 1.0
        self._stalled_until = None

    @property
    def name(self):
        return self.device.name

    @property
    def capacity(self):
        return self.device.capacity

    @property
    def queue_depth(self):
        """Requests waiting (not yet in service) across all units."""
        return sum(len(server.queue) for server in self._servers)

    @property
    def in_service(self):
        """Requests currently being served across all units."""
        return sum(server.in_service for server in self._servers)

    def bind(self, engine, trace=None):
        """Attach the target to a simulation engine (and fresh trace)."""
        self.engine = engine
        if trace is not None:
            self.trace = trace
        return self

    @property
    def stalled(self):
        """True while a stall window is in effect."""
        return self._stalled_until is not None

    @property
    def healthy(self):
        return not self.failed and not self.stalled and self.service_scale == 1.0

    # ------------------------------------------------------------------
    # Fault hooks (driven by repro.faults.injector)
    # ------------------------------------------------------------------

    def fail(self):
        """Fail-stop: error all queued requests and every future submit.

        Requests already in service complete normally (the device had
        them); everything waiting in a queue errors out now.
        """
        self.failed = True
        for server in self._servers:
            queue, server.queue = server.queue, []
            for request in queue:
                self._error(request)

    def repair(self):
        """Return the target to full health (clears every fault state)."""
        self.failed = False
        self.service_scale = 1.0
        self._stalled_until = None
        for server in self._servers:
            self._dispatch(server)

    def degrade(self, service_scale):
        """Scale every subsequent service time by ``service_scale``
        (> 1 is slower; 1.0 restores nominal speed)."""
        if service_scale <= 0:
            raise SimulationError("service scale must be positive")
        self.service_scale = float(service_scale)

    def stall(self, duration_s):
        """Pause dispatching for ``duration_s``; arrivals queue up and
        in-service requests still complete.  Overlapping stalls extend
        the window rather than shortening it."""
        if self.engine is None:
            raise SimulationError("target %s is not bound to an engine" % self.name)
        until = self.engine.now + float(duration_s)
        if self._stalled_until is None or until > self._stalled_until:
            self._stalled_until = until
            self.engine.schedule(float(duration_s), self._resume)

    def _resume(self):
        if self._stalled_until is not None and self.engine.now >= self._stalled_until - 1e-12:
            self._stalled_until = None
            for server in self._servers:
                self._dispatch(server)

    def _error(self, request):
        """Complete a request as a failure after the error latency."""
        self.errors += 1
        request.failed = True
        self.engine.schedule(self.ERROR_LATENCY_S, self._error_complete, request)

    def _error_complete(self, request):
        request.finish_time = self.engine.now
        if request.on_complete is not None:
            request.on_complete(request)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------

    def submit(self, request):
        """Submit a request; splits it if it crosses a unit boundary."""
        if self.engine is None:
            raise SimulationError("target %s is not bound to an engine" % self.name)
        if request.lba < 0 or request.lba + request.size > self.capacity:
            raise SimulationError(
                "request [%d, %d) outside target %s capacity %d"
                % (request.lba, request.lba + request.size, self.name, self.capacity)
            )
        request.submit_time = self.engine.now
        if self.failed:
            self._error(request)
            return
        limit = self.device.boundary(request.lba)
        if request.size <= limit:
            self._enqueue(request)
        else:
            self._submit_split(request, limit)

    def _submit_split(self, request, first_limit):
        """Split a boundary-crossing request into per-unit fragments.

        The original request completes when every fragment has completed.
        """
        fragments = []
        offset = 0
        limit = first_limit
        while offset < request.size:
            size = min(limit, request.size - offset)
            fragments.append(
                IORequest(
                    stream_id=request.stream_id,
                    kind=request.kind,
                    lba=request.lba + offset,
                    size=size,
                    obj=request.obj,
                    logical_offset=None,
                )
            )
            offset += size
            limit = self.device.boundary(request.lba + offset) if offset < request.size else 0

        state = {"remaining": len(fragments)}

        def fragment_done(fragment):
            state["remaining"] -= 1
            if fragment.failed:
                request.failed = True
            if state["remaining"] == 0:
                request.start_time = request.submit_time
                request.finish_time = self.engine.now
                if request.on_complete is not None:
                    request.on_complete(request)

        for fragment in fragments:
            fragment.on_complete = fragment_done
            fragment.submit_time = request.submit_time
            self._enqueue(fragment)

    def _enqueue(self, request):
        unit_index, unit_lba = self.device.route(request.lba)
        request.lba = unit_lba
        server = self._servers[unit_index]
        server.queue.append(request)
        self._dispatch(server)

    def _dispatch(self, server):
        """Start queued requests while the unit has free service slots.

        New arrivals always pass through the queue, so a stream that
        reissues synchronously from its completion callback cannot jump
        ahead of requests that were already waiting.
        """
        if self.stalled or self.failed:
            return
        while server.queue and server.free:
            if server.head_bypassed >= server.BYPASS_LIMIT:
                index = 0
            else:
                index = server.unit.pick_index(server.queue)
            if index != 0:
                server.head_bypassed += 1
            else:
                server.head_bypassed = 0
            self._start(server, server.queue.pop(index))

    def _start(self, server, request):
        request.start_time = self.engine.now
        streams = {request.stream_id}
        streams.update(r.stream_id for r in server.queue)
        service = server.unit.service_time(
            request, active_streams=len(streams) + server.in_service
        ) * self.service_scale
        server.in_service += 1
        server.busy_time += service
        self.engine.schedule(service, self._complete, server, request)

    def _complete(self, server, request):
        server.in_service -= 1
        request.finish_time = self.engine.now
        self.completed += 1
        if request.kind == "read":
            self.bytes_read += request.size
        else:
            self.bytes_written += request.size
        if self.trace is not None or self.engine.has_completion_observers:
            record = CompletionRecord(
                submit_time=request.submit_time,
                finish_time=request.finish_time,
                target=self.name,
                obj=request.obj,
                stream_id=request.stream_id,
                kind=request.kind,
                lba=request.lba,
                logical_offset=request.logical_offset,
                size=request.size,
                service_time=request.finish_time - request.start_time,
            )
            if self.trace is not None:
                self.trace.append(record)
            self.engine.notify_completion(record)
        if request.on_complete is not None:
            request.on_complete(request)
        self._dispatch(server)

    def utilization(self, elapsed):
        """Measured utilization: busy time over available server time."""
        if elapsed <= 0:
            return 0.0
        available = sum(
            elapsed * server.unit.parallelism for server in self._servers
        )
        busy = sum(server.busy_time for server in self._servers)
        return busy / available

    def busy_time(self):
        """Total busy time summed over device units."""
        return sum(server.busy_time for server in self._servers)

    def reset(self):
        """Reset device state and accounting for a fresh run."""
        self.device.reset()
        self._servers = [_UnitServer(unit) for unit in self.device.units]
        self.completed = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.failed = False
        self.errors = 0
        self.service_scale = 1.0
        self._stalled_until = None

    def __repr__(self):
        return "StorageTarget(name={!r}, capacity={})".format(
            self.name, self.capacity
        )
