"""Discrete-event simulation core.

A minimal but fast event loop: a heap of ``(time, sequence, callback,
args)`` entries.  Targets and streams schedule callbacks against it; the
simulation runs until the heap drains (all closed-loop streams finished)
or an explicit horizon is reached.
"""

import heapq

from repro.errors import SimulationError


class SimulationEngine:
    """The simulation clock and event queue.

    Besides scheduling, the engine carries a small completion-observer
    registry: targets publish every
    :class:`~repro.storage.request.CompletionRecord` they produce to the
    registered observers.  This is the hook online components (the
    workload monitor of :mod:`repro.online`) use to watch live traffic
    without owning the trace list.
    """

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._sequence = 0
        self._completion_observers = []
        #: Lifetime count of events executed by :meth:`step`; exported
        #: by the simulator metrics collector as
        #: ``repro_sim_engine_events_total``.
        self.events_processed = 0

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule an event in the past")
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError("cannot schedule an event in the past")
        heapq.heappush(self._heap, (time, self._sequence, callback, args))
        self._sequence += 1

    def step(self):
        """Run the next event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback, args = heapq.heappop(self._heap)
        self._now = time
        self.events_processed += 1
        callback(*args)
        return True

    def run(self, until=None):
        """Run events until the queue drains or ``until`` is reached.

        Returns the final simulated time.
        """
        if until is None:
            while self.step():
                pass
        else:
            while self._heap and self._heap[0][0] <= until:
                self.step()
            if self._now < until:
                self._now = until
        return self._now

    @property
    def pending(self):
        """Number of events waiting in the queue."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Completion observers
    # ------------------------------------------------------------------

    def add_completion_observer(self, callback):
        """Register ``callback(record)`` for every completed request.

        Targets bound to this engine call :meth:`notify_completion` when
        a request finishes, whether or not they keep a trace list.
        """
        if callback not in self._completion_observers:
            self._completion_observers.append(callback)
        return callback

    def remove_completion_observer(self, callback):
        """Deregister a completion observer (no-op when absent)."""
        try:
            self._completion_observers.remove(callback)
        except ValueError:
            pass

    @property
    def has_completion_observers(self):
        return bool(self._completion_observers)

    def notify_completion(self, record):
        """Publish one completion record to every observer."""
        for callback in self._completion_observers:
            callback(record)
