"""Device abstractions shared by the disk, SSD, and RAID models.

A :class:`Device` is a container of one or more :class:`DeviceUnit`
servers.  A plain disk has one unit, an SSD has one unit with internal
parallelism (channels), and a RAID0 group has one unit per member disk.
The :class:`~repro.storage.target.StorageTarget` routes each request to a
unit via :meth:`Device.route` and runs an independent queue per unit.
"""

from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.storage.request import IORequest


class ReadAheadTracker:
    """Tracks sequential streams the way drive prefetch caches do.

    A drive's cache holds a bounded amount of read-ahead data per
    sequential stream.  Every foreign request that the drive services in
    between consumes cache segments and head time, so a stream's
    prefetched data survives only a limited number of intervening
    requests.  This volume-based eviction is the mechanism behind the
    paper's Figure 8: with a contention factor of ``depth`` or less
    (that many competing requests per own request) sequential requests
    still hit prefetched data, and past it the advantage collapses to
    (near-)random cost.

    :meth:`access` reports whether a request continues a tracked
    sequential pattern *and* arrived before its prefetch state was
    evicted.
    """

    #: Dead slots are pruned when the table grows past this size.
    PRUNE_LIMIT = 64

    def __init__(self, depth):
        if depth < 1:
            raise ValueError("readahead tracker needs a depth of at least 1")
        self.depth = int(depth)
        self._clock = 0
        self._slots = {}  # stream_id -> (expected_lba, last_access_clock)

    def access(self, stream_id, lba, size):
        """Record an access and return True if it was a sequential hit."""
        self._clock += 1
        slot = self._slots.get(stream_id)
        hit = (
            slot is not None
            and slot[0] == lba
            and (self._clock - slot[1] - 1) <= self.depth
        )
        self._slots[stream_id] = (lba + size, self._clock)
        if len(self._slots) > self.PRUNE_LIMIT:
            horizon = self._clock - self.depth - 1
            self._slots = {
                sid: state
                for sid, state in self._slots.items()
                if state[1] >= horizon
            }
        return hit

    def reset(self):
        self._clock = 0
        self._slots.clear()


class DeviceUnit(ABC):
    """One independent server inside a device.

    Units are stateful: a disk unit remembers its head position and its
    readahead tracker, so service times depend on the order in which the
    target dispatches requests.
    """

    #: Number of requests the unit can service concurrently.
    parallelism = 1

    @abstractmethod
    def service_time(self, request: IORequest, active_streams=1) -> float:
        """Return the service time for ``request`` and update unit state.

        Args:
            request: The request entering service.
            active_streams: Number of distinct streams with requests
                in service or queued at this unit right now.  Disk
                firmware stops read-ahead when more streams compete than
                it can track, which is what collapses the sequential
                advantage in the paper's Figure 8.
        """

    def pick_index(self, queue) -> int:
        """Choose which queued request to serve next (default FCFS).

        ``queue`` is a non-empty sequence of pending :class:`IORequest`.
        Disk units override this with a LOOK/elevator policy so that the
        average seek distance shrinks as the queue deepens — the effect
        the paper observes as random request costs *decreasing* with
        contention in Figure 8.
        """
        return 0

    def reset(self):
        """Reset any dynamic state (head position, readahead)."""


class Device(ABC):
    """A storage device presented to a target: units plus an LBA router."""

    def __init__(self, name, capacity, units):
        self.name = name
        self.capacity = int(capacity)
        self.units = list(units)
        if not self.units:
            raise ValueError("device must have at least one unit")

    def route(self, lba):
        """Map a target-level byte address to ``(unit_index, unit_lba)``.

        Single-unit devices route everything to unit 0 unchanged.
        """
        return 0, lba

    def boundary(self, lba):
        """Largest request size starting at ``lba`` that stays in one unit.

        Single-unit devices have no internal boundaries.
        """
        return self.capacity - lba

    def reset(self):
        for unit in self.units:
            unit.reset()

    def __repr__(self):
        return "{}(name={!r}, capacity={})".format(
            type(self).__name__, self.name, self.capacity
        )
