"""Solid-state drive model.

SSDs have no positioning costs: random and sequential requests cost the
same, reads are cheap, and writes carry a flash-programming premium.
Internal channel parallelism lets several requests proceed concurrently.
Parameters are shaped after the 32 GB SATA-II SSD in the paper's testbed
(circa 2009 consumer flash).
"""

from dataclasses import dataclass

from repro import units
from repro.storage.device import Device, DeviceUnit


@dataclass(frozen=True)
class SsdParameters:
    """Performance characteristics of a flash SSD.

    Attributes:
        read_latency_s: Fixed per-request read latency.
        write_latency_s: Fixed per-request write latency (flash program).
        read_bps / write_bps: Transfer bandwidth per channel.
        channels: Number of requests serviceable concurrently.
    """

    read_latency_s: float = 0.10 * units.MS
    write_latency_s: float = 0.35 * units.MS
    read_bps: float = 220 * units.MIB
    write_bps: float = 90 * units.MIB
    channels: int = 4


SATA_SSD_2010 = SsdParameters()


class SsdUnit(DeviceUnit):
    """One SSD package; ``parallelism`` models its channel count."""

    def __init__(self, params):
        self.params = params
        self.parallelism = params.channels

    def service_time(self, request, active_streams=1):
        p = self.params
        if request.kind == "write":
            return p.write_latency_s + request.size / p.write_bps
        return p.read_latency_s + request.size / p.read_bps


class SolidStateDrive(Device):
    """A flash SSD storage device."""

    def __init__(self, name, capacity, params=SATA_SSD_2010):
        super().__init__(name, capacity, [SsdUnit(params)])
        self.params = params
