"""Discrete-event storage simulator substrate.

The paper evaluates layouts on real hardware (15K RPM SCSI disks, a Perc
RAID controller, and a SATA SSD).  This subpackage provides the simulated
equivalent: device models whose service times reproduce the qualitative
behaviours the paper's results depend on (sequential vs. random disk costs,
readahead collapse under stream contention, elevator scheduling gains at
queue depth, SSD flat latency, RAID0 bandwidth scaling), an event engine,
request streams, and the layout-to-physical placement mapper.
"""

from repro.storage.request import IORequest, CompletionRecord
from repro.storage.device import Device, DeviceUnit, ReadAheadTracker
from repro.storage.disk import DiskDrive, DiskParameters, ENTERPRISE_15K, NEARLINE_7200
from repro.storage.ssd import SolidStateDrive, SsdParameters, SATA_SSD_2010
from repro.storage.raid import Raid0Group, Raid1Mirror, Raid5Group
from repro.storage.target import StorageTarget
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import (
    SimContext,
    ScanStream,
    RandomStream,
    SteadyStream,
    RunStream,
)

__all__ = [
    "IORequest",
    "CompletionRecord",
    "Device",
    "DeviceUnit",
    "ReadAheadTracker",
    "DiskDrive",
    "DiskParameters",
    "ENTERPRISE_15K",
    "NEARLINE_7200",
    "SolidStateDrive",
    "SsdParameters",
    "SATA_SSD_2010",
    "Raid0Group",
    "Raid1Mirror",
    "Raid5Group",
    "StorageTarget",
    "SimulationEngine",
    "PlacementMap",
    "SimContext",
    "ScanStream",
    "RandomStream",
    "SteadyStream",
    "RunStream",
]
