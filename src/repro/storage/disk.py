"""Mechanical disk drive model.

Service times decompose into per-request overhead, seek, rotational
latency, and media transfer, with a readahead tracker that lets a small
number of concurrent sequential streams skip the positioning costs.  The
parameters below are typical of the 18.4 GB 15K RPM SCSI drives used in
the paper's testbed and of the nearline 7200 RPM drives its introduction
contrasts them with.
"""

import math
from dataclasses import dataclass

from repro import units
from repro.storage.device import Device, DeviceUnit, ReadAheadTracker


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical and firmware characteristics of a disk drive model.

    Attributes:
        rpm: Spindle speed; rotational latency is half a revolution.
        min_seek_s: Track-to-track seek time.
        max_seek_s: Full-stroke seek time; seeks follow the classic
            ``min + (max - min) * sqrt(distance_fraction)`` curve.
        transfer_bps: Sustained media transfer rate, bytes per second.
        overhead_s: Controller/command overhead for a random request.
        sequential_overhead_s: Residual overhead when a request hits the
            drive's prefetch buffer.
        readahead_depth: Number of intervening foreign requests a
            stream's prefetched data survives in the drive cache.  This
            sets the Figure 8 collapse point: the sequential advantage
            holds while the contention factor is at most
            ``readahead_depth`` and collapses past it (the paper's
            drives collapse once the contention factor reaches two).
        prefetch_chunk: Bytes of read-ahead the drive buffers per
            repositioning.  A tracked stream whose region the head has
            left is served from this buffer; once it drains, continuing
            the stream costs a repositioning.  This is why interleaving
            even *two* sequential streams on one spindle costs real
            throughput: each stream pays ~one seek per chunk instead of
            zero, while an isolated stream streams for free.
        write_penalty: Multiplier on positioning costs for writes
            (write-verify and cache-bypass effects; 1.0 disables it).
    """

    rpm: float = 15000.0
    min_seek_s: float = 0.2 * units.MS
    max_seek_s: float = 5.2 * units.MS
    transfer_bps: float = 80 * units.MIB
    overhead_s: float = 0.2 * units.MS
    sequential_overhead_s: float = 0.05 * units.MS
    readahead_depth: int = 1
    prefetch_chunk: int = 128 * units.KIB
    write_penalty: float = 1.1

    @property
    def rotation_s(self):
        """Average rotational latency: half a revolution."""
        return 0.5 * 60.0 / self.rpm


#: Enterprise 15K RPM drive, shaped after the paper's 18.4 GB SCSI disks.
ENTERPRISE_15K = DiskParameters()

#: Cost-effective nearline 7200 RPM drive: slower positioning, similar
#: sequential bandwidth — the heterogeneity case from the introduction.
NEARLINE_7200 = DiskParameters(
    rpm=7200.0,
    min_seek_s=0.5 * units.MS,
    max_seek_s=13.0 * units.MS,
    transfer_bps=70 * units.MIB,
    overhead_s=0.3 * units.MS,
    sequential_overhead_s=0.05 * units.MS,
    readahead_depth=1,
)


class DiskUnit(DeviceUnit):
    """A single spindle: one request in service at a time."""

    parallelism = 1

    def __init__(self, capacity, params):
        self.capacity = int(capacity)
        self.params = params
        self.head = 0
        self.readahead = ReadAheadTracker(params.readahead_depth)
        self._credits = {}

    def seek_time(self, distance):
        """Seek time for a byte-distance move, sqrt-curve interpolation."""
        if distance <= 0:
            return 0.0
        p = self.params
        fraction = min(1.0, distance / self.capacity)
        return p.min_seek_s + (p.max_seek_s - p.min_seek_s) * math.sqrt(fraction)

    def transfer_time(self, size):
        return size / self.params.transfer_bps

    def service_time(self, request, active_streams=1):
        p = self.params
        # Read-ahead helps while the firmware still tracks this stream;
        # with more concurrent streams than tracker slots, each stream's
        # prefetch state is evicted between its own requests and the
        # sequential advantage collapses (the paper's Figure 8).
        hit = self.readahead.access(request.stream_id, request.lba, request.size)
        if hit and request.lba != self.head:
            # The head has been pulled away by another stream: the
            # request is served from the bounded prefetch buffer, which
            # drains after `prefetch_chunk` bytes and then costs a
            # repositioning to refill.
            credit = self._credits.get(request.stream_id, 0)
            if credit >= request.size:
                self._credits[request.stream_id] = credit - request.size
            else:
                hit = False
                self._credits[request.stream_id] = p.prefetch_chunk
                if len(self._credits) > 64:
                    self._credits.clear()
        if hit:
            cost = p.sequential_overhead_s + self.transfer_time(request.size)
        else:
            distance = abs(request.lba - self.head)
            # Elevator effect: with more concurrent streams the firmware
            # reorders among a deeper queue, shortening the average seek
            # — the gentle downward slope of the run-count-1 curve in
            # the paper's Figure 8.
            elevator = max(0.6, 1.0 / (1.0 + 0.12 * max(0, active_streams - 1)))
            positioning = self.seek_time(distance) * elevator + p.rotation_s
            if request.kind == "write":
                positioning *= p.write_penalty
            cost = p.overhead_s + positioning + self.transfer_time(request.size)
        self.head = request.lba + request.size
        return cost

    def reset(self):
        self.head = 0
        self.readahead.reset()
        self._credits = {}


class DiskDrive(Device):
    """A standalone disk drive storage device (one unit)."""

    def __init__(self, name, capacity, params=ENTERPRISE_15K):
        super().__init__(name, capacity, [DiskUnit(capacity, params)])
        self.params = params
