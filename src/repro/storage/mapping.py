"""Layout-to-physical placement mapping.

The paper implements layouts with a host logical volume manager that
divides each object into fixed-size stripes and distributes them to
storage targets.  :class:`PlacementMap` reproduces that: given per-object
target fractions (a row of the layout matrix), it deals the object's
stripes to targets with a deterministic weighted round-robin so that each
target receives its fraction, and allocates each target's share as one
physically contiguous region — exactly what an LVM does, and the reason a
logically sequential scan stays sequential on every member target.
"""

import math
import zlib

from repro import units
from repro.errors import CapacityError, LayoutError


def _stable_hash(name):
    """Deterministic cross-run hash (unlike builtin ``hash`` of str)."""
    return zlib.crc32(name.encode("utf-8"))


class _ObjectPlacement:
    """Resolved placement for one object: stripe → (target, address)."""

    def __init__(self, name, size, stripe_size, stripe_targets, stripe_addresses):
        self.name = name
        self.size = size
        self.stripe_size = stripe_size
        self.stripe_targets = stripe_targets
        self.stripe_addresses = stripe_addresses


class PlacementMap:
    """Maps (object, logical offset) to (target index, physical address).

    Args:
        object_sizes: Mapping of object name to size in bytes.
        fractions: Mapping of object name to a sequence of per-target
            fractions (must sum to ~1 per object).
        target_capacities: Sequence of target capacities in bytes.
        stripe_size: LVM stripe size.

    Raises:
        LayoutError: If fractions are malformed.
        CapacityError: If the resulting regions overflow some target.
    """

    #: Tie-breaking policies for distributing an object's stripes.
    ALLOCATION_POLICIES = ("first-fit", "rotate")

    def __init__(
        self,
        object_sizes,
        fractions,
        target_capacities,
        stripe_size=units.DEFAULT_STRIPE_SIZE,
        allocation="first-fit",
    ):
        if allocation not in self.ALLOCATION_POLICIES:
            raise LayoutError("unknown allocation policy %r" % allocation)
        self.allocation = allocation
        self.stripe_size = int(stripe_size)
        self.n_targets = len(target_capacities)
        self._placements = {}
        allocated = [0] * self.n_targets

        for name, size in object_sizes.items():
            row = list(fractions[name])
            if len(row) != self.n_targets:
                raise LayoutError(
                    "object %s has %d fractions for %d targets"
                    % (name, len(row), self.n_targets)
                )
            if any(f < -1e-9 for f in row):
                raise LayoutError("object %s has a negative fraction" % name)
            total = sum(row)
            if abs(total - 1.0) > 1e-6:
                raise LayoutError(
                    "fractions for object %s sum to %.6f, not 1" % (name, total)
                )
            placement = self._place_object(name, size, row, allocated)
            self._placements[name] = placement

        for j, capacity in enumerate(target_capacities):
            if allocated[j] > capacity:
                raise CapacityError(
                    "target %d needs %d bytes but has capacity %d"
                    % (j, allocated[j], capacity)
                )
        self.allocated = allocated

    def _place_object(self, name, size, row, allocated):
        n_stripes = max(1, math.ceil(size / self.stripe_size))
        # Weighted round-robin (largest remainder): target j receives
        # ~row[j] * n_stripes stripes, interleaved as evenly as possible.
        #
        # Credit *ties* (equal fractions) must be broken somehow, and the
        # choice is visible for objects of only a few stripes:
        #
        # * ``first-fit`` starts every object at the first target, the
        #   way naive volume managers allocate from the first device
        #   with free extents.  Under a nominal stripe-everything layout
        #   the many small catalog objects then pile onto the low-
        #   numbered targets — exactly the kind of hidden imbalance the
        #   paper's workload-aware advisor gets to fix.
        # * ``rotate`` starts each object at a per-object pseudo-random
        #   target, emulating an idealized allocator (or a full-scale
        #   database whose every object spans many stripes).
        if self.allocation == "rotate":
            rotation = _stable_hash(name) % self.n_targets
        else:
            rotation = 0
        order = [
            (rotation + j) % self.n_targets for j in range(self.n_targets)
        ]
        if not any(row[j] > 0.0 for j in order):
            raise LayoutError("object %s has no positive fraction" % name)

        # Largest-remainder quotas pin each target's total to within one
        # stripe of row[j] * n_stripes.  (A pure smooth-round-robin deal
        # can drift up to n_targets - 1 stripes below a target's share,
        # because credits only sum to zero jointly.)
        quota = [
            math.floor(row[j] * n_stripes) if row[j] > 0.0 else 0
            for j in range(self.n_targets)
        ]
        leftover = n_stripes - sum(quota)
        by_remainder = sorted(
            (j for j in order if row[j] > 0.0),
            key=lambda j: -(row[j] * n_stripes - quota[j]),
        )
        while leftover > 0:
            for j in by_remainder:
                if leftover <= 0:
                    break
                quota[j] += 1
                leftover -= 1

        # Smooth weighted round-robin interleave, constrained to the
        # quotas so the totals stay exact while consecutive stripes still
        # spread across targets roughly in proportion.
        credit = [0.0] * self.n_targets
        stripe_targets = []
        per_target_count = [0] * self.n_targets
        for _ in range(n_stripes):
            best = None
            for j in order:
                if per_target_count[j] >= quota[j]:
                    continue
                credit[j] += row[j]
                if best is None or credit[j] > credit[best]:
                    best = j
            credit[best] -= 1.0
            stripe_targets.append(best)
            per_target_count[best] += 1

        region_start = list(allocated)
        for j in range(self.n_targets):
            allocated[j] += per_target_count[j] * self.stripe_size

        # Each target's stripes are physically consecutive inside the
        # object's region on that target.
        next_slot = [0] * self.n_targets
        stripe_addresses = []
        for j in stripe_targets:
            address = region_start[j] + next_slot[j] * self.stripe_size
            next_slot[j] += 1
            stripe_addresses.append(address)

        return _ObjectPlacement(
            name, size, self.stripe_size, stripe_targets, stripe_addresses
        )

    def locate(self, obj, offset, size):
        """Resolve a request to ``(target_index, physical_address)``.

        The request must not cross a stripe boundary (database page
        requests are far smaller than a stripe, so callers naturally
        satisfy this).
        """
        placement = self._placements[obj]
        stripe = offset // self.stripe_size
        within = offset % self.stripe_size
        if within + size > self.stripe_size:
            raise LayoutError(
                "request at offset %d size %d crosses a stripe boundary"
                % (offset, size)
            )
        if stripe >= len(placement.stripe_targets):
            raise LayoutError(
                "offset %d beyond object %s (%d bytes)"
                % (offset, obj, placement.size)
            )
        target = placement.stripe_targets[stripe]
        address = placement.stripe_addresses[stripe] + within
        return target, address

    def targets_of(self, obj):
        """Set of target indices that hold any part of ``obj``."""
        return sorted(set(self._placements[obj].stripe_targets))

    def bytes_on_target(self, obj, target_index):
        """Bytes of ``obj`` stored on the given target."""
        placement = self._placements[obj]
        count = sum(1 for t in placement.stripe_targets if t == target_index)
        return count * self.stripe_size

    def object_size(self, obj):
        return self._placements[obj].size

    @property
    def objects(self):
        return list(self._placements)
