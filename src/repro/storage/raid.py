"""RAID0 group device: stripes a target's address space over member disks.

The paper's heterogeneous experiments build "3-1" and "2-1-1" target
configurations with a Perc RAID controller: a RAID0 group over several
disks presented as one storage target.  Here a :class:`Raid0Group` exposes
one :class:`~repro.storage.device.DeviceUnit` per member spindle; the
address router sends each request to the member that owns its stripe unit,
so concurrent streams spread across members and aggregate bandwidth scales
with the member count.
"""

from repro import units
from repro.storage.device import Device
from repro.storage.disk import DiskUnit, ENTERPRISE_15K


class Raid0Group(Device):
    """A RAID0 stripe set over ``n_members`` identical disks.

    Args:
        name: Device name.
        capacity: Total capacity of the group (sum over members).
        n_members: Number of member spindles.
        params: Disk parameters for every member.
        stripe_unit: RAID chunk size in bytes.  Requests must not cross a
            stripe-unit boundary; the storage target splits them if needed.
    """

    def __init__(
        self,
        name,
        capacity,
        n_members,
        params=ENTERPRISE_15K,
        stripe_unit=64 * units.KIB,
    ):
        if n_members < 1:
            raise ValueError("RAID0 group needs at least one member")
        member_capacity = capacity // n_members
        members = [DiskUnit(member_capacity, params) for _ in range(n_members)]
        super().__init__(name, capacity, members)
        self.n_members = int(n_members)
        self.stripe_unit = int(stripe_unit)
        self.params = params

    def route(self, lba):
        stripe = lba // self.stripe_unit
        unit_index = stripe % self.n_members
        unit_lba = (stripe // self.n_members) * self.stripe_unit + (
            lba % self.stripe_unit
        )
        return int(unit_index), int(unit_lba)

    def boundary(self, lba):
        """Bytes until the next stripe-unit boundary from ``lba``."""
        return self.stripe_unit - (lba % self.stripe_unit)


class _Raid1Unit(DiskUnit):
    """Both mirror spindles, presented as one two-way server.

    Reads alternate between the members (either copy can serve them);
    writes must land on both, so a write's service time is the slower
    of the two members' and both heads move.
    """

    def __init__(self, capacity, params):
        super().__init__(capacity, params)
        self.parallelism = 2
        self._members = [DiskUnit(capacity, params) for _ in range(2)]
        self._next_reader = 0

    def service_time(self, request, active_streams=1):
        if request.kind == "read":
            member = self._members[self._next_reader]
            self._next_reader = 1 - self._next_reader
            return member.service_time(request, active_streams)
        return max(
            member.service_time(request, active_streams)
            for member in self._members
        )

    def reset(self):
        for member in self._members:
            member.reset()
        self._next_reader = 0


class Raid1Mirror(Device):
    """A two-disk RAID1 mirror.

    Capacity equals one member's; read throughput approaches two
    spindles (either copy serves), writes pay the slower member.
    """

    def __init__(self, name, capacity, params=ENTERPRISE_15K):
        super().__init__(name, capacity, [_Raid1Unit(capacity, params)])
        self.params = params


class _Raid5MemberUnit(DiskUnit):
    """A RAID5 member spindle with the small-write penalty.

    A small write in RAID5 is a read-modify-write: read old data, read
    old parity, write data, write parity — four media operations across
    two spindles.  We approximate it as a 4x positioning-and-transfer
    penalty on the member that owns the data block, which preserves the
    qualitative behaviour (RAID5 reads scale like RAID0 over the
    members, RAID5 small writes are expensive).
    """

    WRITE_AMPLIFICATION = 4.0

    def service_time(self, request, active_streams=1):
        cost = super().service_time(request, active_streams)
        if request.kind == "write":
            cost *= self.WRITE_AMPLIFICATION
        return cost


class Raid5Group(Device):
    """A RAID5 stripe set over ``n_members`` disks (one parity's worth).

    Usable capacity is ``(n - 1)/n`` of the raw total.  Requests route
    round-robin over all members like RAID0 (parity rotation spreads
    parity I/O evenly, so modelling dedicated parity placement adds
    nothing at this abstraction level).
    """

    def __init__(self, name, capacity, n_members,
                 params=ENTERPRISE_15K, stripe_unit=64 * units.KIB):
        if n_members < 3:
            raise ValueError("RAID5 needs at least three members")
        member_capacity = capacity // (n_members - 1)
        members = [
            _Raid5MemberUnit(member_capacity, params)
            for _ in range(n_members)
        ]
        super().__init__(name, capacity, members)
        self.n_members = int(n_members)
        self.stripe_unit = int(stripe_unit)
        self.params = params

    def route(self, lba):
        stripe = lba // self.stripe_unit
        unit_index = stripe % self.n_members
        unit_lba = (stripe // self.n_members) * self.stripe_unit + (
            lba % self.stripe_unit
        )
        return int(unit_index), int(unit_lba)

    def boundary(self, lba):
        return self.stripe_unit - (lba % self.stripe_unit)
