"""I/O request and completion record types used by the simulator."""

from dataclasses import dataclass, field
from typing import Callable, Optional

READ = "read"
WRITE = "write"


@dataclass
class IORequest:
    """A single block I/O request against a storage target.

    Attributes:
        stream_id: Identifier of the logical request stream this request
            belongs to.  Device readahead trackers use it to recognise
            sequential streams, mirroring how a real drive's prefetch logic
            tracks a small number of concurrent sequential access patterns.
        kind: ``"read"`` or ``"write"``.
        lba: Byte address on the *target* (the target routes it to a
            device unit, e.g. a RAID member).
        size: Request size in bytes.
        obj: Optional name of the database object this request serves;
            carried through to the trace for workload fitting.
        logical_offset: Offset of the request within the object's logical
            address space, used by the trace analyzer to measure run
            counts independent of physical placement.
        on_complete: Callback invoked with this request when service
            finishes.
        failed: True when the request errored instead of completing
            (submitted to a failed target); such requests never produce
            a :class:`CompletionRecord` and carry no service time.
    """

    stream_id: int
    kind: str
    lba: int
    size: int
    obj: Optional[str] = None
    logical_offset: Optional[int] = None
    on_complete: Optional[Callable[["IORequest"], None]] = None
    submit_time: float = field(default=0.0)
    start_time: float = field(default=0.0)
    finish_time: float = field(default=0.0)
    failed: bool = field(default=False)

    @property
    def latency(self):
        """Total time from submission to completion (queueing + service)."""
        return self.finish_time - self.submit_time

    @property
    def service_time(self):
        """Time actually spent in service at the device."""
        return self.finish_time - self.start_time


@dataclass(frozen=True)
class CompletionRecord:
    """Immutable trace record emitted when a request completes.

    These records are the simulator's equivalent of the kernel block-I/O
    traces the paper collects; the workload analyzer fits Rome-style
    workload descriptions from a list of them.
    """

    submit_time: float
    finish_time: float
    target: str
    obj: Optional[str]
    stream_id: int
    kind: str
    lba: int
    logical_offset: Optional[int]
    size: int
    service_time: float

    @property
    def latency(self):
        return self.finish_time - self.submit_time
