"""Closed-loop request streams driving the storage simulator.

Database I/O is predominantly closed-loop: a scan issues the next page
read when the previous one returns (with OS readahead keeping a window of
requests in flight), and an OLTP terminal issues the next transaction when
the current one commits.  These stream classes model that, issuing
requests through a :class:`SimContext` that resolves object offsets to
physical target addresses via the placement map.
"""

import itertools

from repro import units
from repro.errors import SimulationError
from repro.storage.request import IORequest

_stream_ids = itertools.count(1)


def next_stream_id():
    """Allocate a fresh globally-unique stream identifier."""
    return next(_stream_ids)


class SimContext:
    """Bundles the engine, placement map, and bound targets.

    Args:
        engine: The simulation engine.
        placement: A :class:`~repro.storage.mapping.PlacementMap`.
        targets: Sequence of bound :class:`StorageTarget`, indexed the
            same way as the placement map's fractions.
    """

    def __init__(self, engine, placement, targets):
        self.engine = engine
        self.placement = placement
        self.targets = list(targets)

    def set_placement(self, placement):
        """Swap the placement map (an online layout change).

        Requests already submitted keep the target they were routed to;
        every subsequent :meth:`submit` resolves against the new map.
        This is how the online controller brings a migrated layout into
        effect once the background copy finishes.
        """
        self.placement = placement
        return placement

    def submit(self, obj, offset, size, kind, stream_id, on_complete=None):
        """Issue one request against the target holding this extent."""
        target_index, address = self.placement.locate(obj, offset, size)
        request = IORequest(
            stream_id=stream_id,
            kind=kind,
            lba=address,
            size=size,
            obj=obj,
            logical_offset=offset,
            on_complete=on_complete,
        )
        self.targets[target_index].submit(request)
        return request


class _ClosedLoopStream:
    """Base for streams that keep up to ``window`` requests in flight."""

    def __init__(self, ctx, obj, kind="read", page=units.DEFAULT_PAGE_SIZE,
                 window=1, think_s=0.0, on_done=None):
        if window < 1:
            raise SimulationError("stream window must be at least 1")
        self.ctx = ctx
        self.obj = obj
        self.kind = kind
        self.page = int(page)
        self.window = int(window)
        self.think_s = float(think_s)
        self.on_done = on_done
        self.stream_id = next_stream_id()
        self.outstanding = 0
        self.completions = 0
        self.errors = 0
        self.finished = False
        self._started = False

    def start(self):
        """Begin issuing requests; fills the window."""
        if self._started:
            raise SimulationError("stream already started")
        self._started = True
        for _ in range(self.window):
            if not self._issue():
                break
        self._check_done()
        return self

    def _next_offset(self):
        """Return the next logical offset, or None when exhausted."""
        raise NotImplementedError

    def _issue(self):
        offset = self._next_offset()
        if offset is None:
            return False
        self.outstanding += 1
        self.ctx.submit(
            self.obj, offset, self.page, self.kind, self.stream_id,
            on_complete=self._completed,
        )
        return True

    def _completed(self, request):
        self.outstanding -= 1
        if request.failed:
            # Errored at a failed target; the stream retries (the next
            # issue re-resolves the placement, which an evacuation may
            # have repaired in the meantime).
            self.errors += 1
        else:
            self.completions += 1
        if self.think_s > 0:
            self.ctx.engine.schedule(self.think_s, self._refill)
        else:
            self._refill()

    def _refill(self):
        self._issue()
        self._check_done()

    def _check_done(self):
        if not self.finished and self.outstanding == 0 and self._exhausted():
            self.finished = True
            if self.on_done is not None:
                self.on_done(self)

    def _exhausted(self):
        raise NotImplementedError


class ScanStream(_ClosedLoopStream):
    """Sequential scan over a logical range of an object.

    Models a table scan with OS readahead: ``window`` page requests stay
    in flight, offsets strictly increasing.  On a striped layout
    consecutive pages resolve to different targets, so a wide window keeps
    several targets busy — the reason SEE performs tolerably for a single
    sequential scan.
    """

    def __init__(self, ctx, obj, length=None, start=0,
                 page=units.DEFAULT_PAGE_SIZE, window=8, kind="read",
                 think_s=0.0, on_done=None):
        super().__init__(ctx, obj, kind=kind, page=page, window=window,
                         think_s=think_s, on_done=on_done)
        size = ctx.placement.object_size(obj)
        if length is None:
            length = size - start
        if start + length > size:
            raise SimulationError(
                "scan range [%d, %d) beyond object %s size %d"
                % (start, start + length, obj, size)
            )
        self._cursor = int(start)
        self._end = int(start + length)

    def _next_offset(self):
        if self._cursor + self.page > self._end:
            return None
        offset = self._cursor
        self._cursor += self.page
        return offset

    def _exhausted(self):
        return self._cursor + self.page > self._end


class RunStream(_ClosedLoopStream):
    """Random-with-runs access: bursts of ``run_count`` sequential pages.

    This is the calibration workload of Section 5.2.2: request streams
    with a known request size, run count, and (via concurrent streams)
    degree of contention.  ``run_count=1`` is a purely random workload.
    """

    def __init__(self, ctx, obj, n_requests, run_count=1, rng=None,
                 page=units.DEFAULT_PAGE_SIZE, window=1, kind="read",
                 think_s=0.0, on_done=None):
        super().__init__(ctx, obj, kind=kind, page=page, window=window,
                         think_s=think_s, on_done=on_done)
        if run_count < 1:
            raise SimulationError("run count must be at least 1")
        if rng is None:
            import numpy.random
            rng = numpy.random.default_rng(0)
        self.rng = rng
        self.run_count = int(run_count)
        self._remaining = int(n_requests)
        self._run_left = 0
        self._cursor = 0
        size = ctx.placement.object_size(obj)
        self._n_pages = max(1, size // self.page)

    def _next_offset(self):
        if self._remaining <= 0:
            return None
        if self._run_left <= 0 or self._cursor + self.page > self._n_pages * self.page:
            self._cursor = int(self.rng.integers(0, self._n_pages)) * self.page
            self._run_left = self.run_count
        offset = self._cursor
        self._cursor += self.page
        self._run_left -= 1
        self._remaining -= 1
        return offset

    def _exhausted(self):
        return self._remaining <= 0


class RandomStream(RunStream):
    """Uniform random page accesses (a run count of one)."""

    def __init__(self, ctx, obj, n_requests, rng=None,
                 page=units.DEFAULT_PAGE_SIZE, window=1, kind="read",
                 think_s=0.0, on_done=None):
        super().__init__(ctx, obj, n_requests, run_count=1, rng=rng,
                         page=page, window=window, kind=kind,
                         think_s=think_s, on_done=on_done)


class SteadyStream(RunStream):
    """A run stream that keeps issuing until explicitly stopped.

    Used as calibration "competitor" load: it runs alongside the measured
    stream and its completion count yields the realised contention factor.
    """

    def __init__(self, ctx, obj, run_count=1, rng=None,
                 page=units.DEFAULT_PAGE_SIZE, window=1, kind="read",
                 think_s=0.0):
        super().__init__(ctx, obj, n_requests=1, run_count=run_count,
                         rng=rng, page=page, window=window, kind=kind,
                         think_s=think_s, on_done=None)
        self._stopped = False
        self._remaining = 1 << 62

    def stop(self):
        """Stop issuing new requests; in-flight ones still complete."""
        self._stopped = True
        self._remaining = 0

    def _next_offset(self):
        if self._stopped:
            return None
        return super()._next_offset()

    def _exhausted(self):
        return self._stopped
