"""Shared unit constants and small conversion helpers.

Throughout the library:

* sizes and capacities are in **bytes**,
* times are in **seconds**,
* request rates are in **requests per second**,
* device positions (logical block addresses) are in **bytes** as well, so
  that request sizes and seek distances share one unit.
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MS = 1e-3
US = 1e-6

#: Default LVM stripe size used by the layout model and the placement
#: mapper.  The paper's experiments used a host LVM with striping; 1 MiB
#: is a typical stripe size and is the library default everywhere.  At
#: this size a scan works one member disk at a time (coarse
#: time-multiplexing), and objects smaller than a stripe necessarily
#: land whole on a single target — both properties the experiments
#: depend on (see PlacementMap's allocation-policy discussion).
DEFAULT_STRIPE_SIZE = 1 * MIB

#: Default block-I/O request size for database page reads (PostgreSQL uses
#: 8 KiB pages; the paper's Figure 8 slice is for 8 KiB reads).
DEFAULT_PAGE_SIZE = 8 * KIB


def bytes_to_gib(n):
    """Return ``n`` bytes expressed in GiB as a float."""
    return n / GIB


def gib(n):
    """Return ``n`` GiB expressed in bytes as an int."""
    return int(n * GIB)


def mib(n):
    """Return ``n`` MiB expressed in bytes as an int."""
    return int(n * MIB)


def kib(n):
    """Return ``n`` KiB expressed in bytes as an int."""
    return int(n * KIB)
