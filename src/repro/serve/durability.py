"""Durable tenant state for the serving layer: WAL + snapshots.

The advisor service hosts hundreds of tenants whose state — problem,
controller config, layout, trace clock, SLO standing — otherwise lives
only in process memory: a ``kill -9`` would strand every in-flight
migration and forget every tenant.  This module makes the serving
layer crash-recoverable with the classic database recipe:

* a **per-tenant write-ahead log** (``<state_dir>/<tenant>/wal.jsonl``)
  records every durable state transition as one fsynced JSON line —
  tenant create (with the full problem payload), config changes,
  applied trace-chunk offsets, placement swaps, idempotency records,
  and delete.  Parsing tolerates a torn *final* line (the one partial
  write a crash can leave behind), exactly like
  :mod:`repro.faults.journal`; any earlier malformed line is skipped
  and counted, never fatal — one bad line must not strand a tenant.
* **periodic compacting snapshots**
  (``<state_dir>/<tenant>/snapshot-<n>.json``, written atomically via
  rename) fold the WAL into one self-contained state document — the
  ``ServedController.status()``-shaped payload plus layout rows, the
  monitor's decayed-window digest, the drift baseline, and the SLO
  window's high-water marks.  After a snapshot lands, the WAL restarts
  empty: recovery cost is bounded by the snapshot interval, not by
  tenant lifetime.
* :func:`load_tenant_state` replays snapshot + WAL tail into one
  effective state dict; :func:`recover_state_dir` enumerates a whole
  state directory.  The service's ``recover()`` path turns those into
  live tenants and re-enters suspended migration journals through the
  controller's existing ``resume_migration()``.

Recovery ordering (the durability contract, DESIGN.md §15): the WAL
record for an event is written *after* the event's own durable effect
(a migration journal's commit record precedes its WAL ``swap`` line),
so replay applies the snapshot, then WAL records in sequence order,
then reconciles migration journals — committed journals not yet
reflected by a ``swap`` record win over the WAL's older layout, and
uncommitted journals are resumed exactly once.
"""

import json
import os
import re

from repro.errors import ReproError

#: Schema version stamped on every WAL record and snapshot.
VERSION = 1

#: WAL record kinds replay understands.
KINDS = ("create", "config", "feed", "swap", "idem", "delete")

_SNAPSHOT = re.compile(r"^snapshot-(\d+)\.json$")


class DurabilityError(ReproError):
    """A WAL or snapshot is unusable (not merely torn)."""


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------

class TenantWAL:
    """Append-only fsync JSONL write-ahead log for one tenant.

    Every :meth:`append` assigns the next sequence number, writes one
    JSON line, flushes, and fsyncs before returning: when the call
    returns, the event is durable.  ``seq`` restarts relative to
    nothing — it is monotonically increasing across the tenant's whole
    life (snapshots store the last folded seq, compaction preserves the
    counter), so "records newer than snapshot" is a simple comparison.
    """

    def __init__(self, directory, start_seq=0):
        self.directory = str(directory)
        self.path = os.path.join(self.directory, "wal.jsonl")
        self.seq = int(start_seq)
        self._handle = None

    @classmethod
    def resume(cls, directory):
        """A WAL positioned after the last durable record on disk.

        Reads the newest snapshot's folded seq and the WAL tail so the
        next :meth:`append` continues the tenant's lifetime sequence —
        used both at recovery and when re-creating a tenant id whose
        directory already exists.
        """
        snapshot = load_snapshot(directory)
        floor = int(snapshot["wal_seq"]) if snapshot is not None else 0
        records, _ = read_wal(os.path.join(str(directory), "wal.jsonl"))
        if records:
            floor = max(floor, records[-1]["seq"])
        return cls(directory, start_seq=floor)

    def _ensure(self):
        if self._handle is None:
            os.makedirs(self.directory, exist_ok=True)
            self._handle = open(self.path, "a")
        return self._handle

    def append(self, kind, **payload):
        """Durably append one record; returns its sequence number."""
        if kind not in KINDS:
            raise DurabilityError("unknown WAL record kind %r" % kind)
        self.seq += 1
        record = {"seq": self.seq, "kind": kind, "v": VERSION}
        record.update(payload)
        handle = self._ensure()
        handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return self.seq

    def compact(self, upto_seq):
        """Drop records already folded into a snapshot.

        Rewrites the WAL atomically keeping only records with
        ``seq > upto_seq`` (normally none — the snapshot is taken right
        after the last append).  The sequence counter survives.
        """
        tail = [r for r in read_wal(self.path)[0] if r["seq"] > upto_seq]
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            for record in tail:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.close()
        os.replace(tmp, self.path)
        # Re-fsync the directory so the rename itself is durable.
        _fsync_dir(self.directory)

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _fsync_dir(directory):
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_wal(path):
    """Parse a WAL; returns ``(records, skipped)``.

    A missing file is an empty log.  A torn final line (the partial
    write of a crash) is silently dropped; any *other* malformed line
    is skipped and counted — data loss is surfaced, not fatal.
    Records are returned in sequence order.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path) as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records, skipped = [], 0
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            record = None
        if (not isinstance(record, dict) or "seq" not in record
                or record.get("kind") not in KINDS):
            if position == len(lines) - 1:
                continue  # torn final write — expected after a crash
            skipped += 1
            continue
        records.append(record)
    records.sort(key=lambda r: r["seq"])
    return records, skipped


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------

def write_snapshot(directory, state, keep=2):
    """Atomically write a compacting snapshot; returns its path.

    ``state`` must carry ``wal_seq`` (the last WAL sequence folded in).
    The document is written to a temp file, fsynced, renamed into
    place, and older snapshots beyond ``keep`` are pruned — a crash at
    any byte leaves either the previous snapshot set or the new one,
    never a half-written current snapshot.
    """
    if "wal_seq" not in state:
        raise DurabilityError("snapshot state needs a wal_seq")
    os.makedirs(directory, exist_ok=True)
    existing = _snapshots(directory)
    index = (existing[-1][0] + 1) if existing else 1
    path = os.path.join(directory, "snapshot-%06d.json" % index)
    document = dict(state)
    document["v"] = VERSION
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)
    for _, old in existing[:max(0, len(existing) + 1 - keep)]:
        try:
            os.remove(old)
        except OSError:
            pass
    return path


def _snapshots(directory):
    """``(index, path)`` of every snapshot, oldest first."""
    out = []
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in names:
        match = _SNAPSHOT.match(name)
        if match:
            out.append((int(match.group(1)),
                        os.path.join(directory, name)))
    out.sort()
    return out


def load_snapshot(directory):
    """The newest *valid* snapshot document, or None.

    A snapshot torn by a crash mid-write cannot exist (rename is
    atomic), but a corrupt file — disk fault, manual edit — falls back
    to the next-older snapshot rather than failing recovery.
    """
    for _, path in reversed(_snapshots(directory)):
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(document, dict) and "wal_seq" in document:
            return document
    return None


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def load_tenant_state(directory):
    """Snapshot + WAL tail → one effective tenant state dict, or None.

    Returns None when the directory holds no recoverable tenant (no
    create record and no snapshot) or the tenant was deleted.  The
    returned dict carries::

        tenant_id, problem, controller, weight, slo,
        layout            — fractions by object name (latest effective)
        clock_s, next_check, records_fed, chunks_fed, advises, resolves
        monitor           — monitor digest (may be None)
        solved            — drift-baseline workloads (may be None)
        slo_state         — window high-water marks (may be None)
        journal_seq       — last migration journal number issued
        swapped_journals  — journal basenames whose swap reached the WAL
        idempotency       — key → {route, response} replay cache
        wal_seq, wal_skipped
    """
    snapshot = load_snapshot(directory)
    records, skipped = read_wal(os.path.join(directory, "wal.jsonl"))
    state = None
    if snapshot is not None:
        state = dict(snapshot)
        state.pop("v", None)
    floor = state["wal_seq"] if state is not None else 0

    deleted = False
    for record in records:
        if record["seq"] <= floor:
            continue
        kind = record["kind"]
        if kind == "create":
            # A create record is an authoritative rebirth: it resets any
            # earlier state so delete-then-recreate of the same id
            # replays to the *new* tenant, not a hybrid of both lives.
            state = {
                "tenant_id": record.get("tenant_id"),
                "problem": record.get("problem"),
                "controller": record.get("controller") or {},
                "weight": record.get("weight", 1.0),
                "slo": record.get("slo"),
                "layout": record.get("layout"),
                "clock_s": None,
                "next_check": None,
                "records_fed": 0,
                "chunks_fed": 0,
                "advises": 0,
                "resolves": 0,
                "monitor": None,
                "solved": None,
                "slo_state": None,
                "journal_seq": record.get("journal_seq", 0),
                "swapped_journals": [],
                "idempotency": {},
            }
            deleted = False
        elif state is None:
            # Feed/swap records with no create and no snapshot mean the
            # create line itself was lost — nothing to rebuild from.
            continue
        elif kind == "config":
            state["controller"] = record.get("controller",
                                             state.get("controller"))
            if "weight" in record:
                state["weight"] = record["weight"]
        elif kind == "feed":
            state["clock_s"] = record.get("clock_s", state.get("clock_s"))
            state["next_check"] = record.get("next_check",
                                             state.get("next_check"))
            state["records_fed"] = record.get("records_fed",
                                              state.get("records_fed", 0))
            state["chunks_fed"] = record.get("chunks_fed",
                                             state.get("chunks_fed", 0))
            state["resolves"] = record.get("resolves",
                                           state.get("resolves", 0))
        elif kind == "swap":
            state["layout"] = record.get("layout", state.get("layout"))
            state["resolves"] = record.get("resolves",
                                           state.get("resolves", 0))
            state["journal_seq"] = max(
                int(state.get("journal_seq") or 0),
                int(record.get("journal_seq") or 0),
            )
            journal = record.get("journal")
            if journal:
                swapped = state.setdefault("swapped_journals", [])
                if journal not in swapped:
                    swapped.append(journal)
        elif kind == "idem":
            state.setdefault("idempotency", {})[record["key"]] = {
                "route": record.get("route"),
                "response": record.get("response"),
            }
        elif kind == "delete":
            deleted = True

    if state is None or deleted:
        return None
    if not state.get("tenant_id") or state.get("problem") is None \
            or state.get("layout") is None:
        raise DurabilityError(
            "state under %s has no recoverable tenant identity" % directory
        )
    state.setdefault("swapped_journals", [])
    state.setdefault("idempotency", {})
    state["wal_seq"] = records[-1]["seq"] if records else floor
    state["wal_skipped"] = skipped + int(state.pop("snapshot_skipped", 0) or 0)
    return state


def recover_state_dir(state_dir):
    """Every recoverable tenant under ``state_dir``, sorted by id.

    Returns ``(states, errors)`` — per-tenant state dicts plus a list
    of ``(tenant_dir, error)`` for directories whose state could not be
    replayed.  One corrupt tenant must not block the rest of the fleet
    from coming back.
    """
    states, errors = [], []
    if state_dir is None or not os.path.isdir(state_dir):
        return states, errors
    for name in sorted(os.listdir(state_dir)):
        directory = os.path.join(state_dir, name)
        if not os.path.isdir(directory):
            continue
        try:
            state = load_tenant_state(directory)
        except Exception as error:  # noqa: BLE001 — isolated per tenant
            errors.append((directory, error))
            continue
        if state is not None:
            states.append(state)
    return states, errors
