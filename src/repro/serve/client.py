"""Minimal asyncio JSON/HTTP client for the advisor service.

One :class:`ServeClient` is one keep-alive connection — exactly what a
closed-loop load-generator tenant needs: requests on a connection are
serialized, responses arrive in order, and reconnection is automatic
when the server closes the socket.  This is a test/bench tool, not a
general HTTP client; it speaks only the service's own subset.

Retry policy (the part worth being careful about):

* a **send-phase** failure — the connection dies before the request is
  fully written — means the server closed a stale keep-alive socket
  between requests and never saw this request; any method gets one
  immediate reconnect-and-resend, exactly the old behavior;
* a **receive-phase** failure — the connection dies after the request
  went out, including mid-body (a short read inside the response) —
  means the server *may have executed* the request.  Only requests that
  are safe to repeat are retried: ``GET``s, and mutations carrying an
  ``Idempotency-Key`` (the service replays the recorded response
  instead of re-executing).  Everything else surfaces the error.
* retries back off exponentially with jitter, capped, and honor a
  ``Retry-After`` header when the optional ``retry_statuses`` list asks
  for status-based retries (429 admission sheds, 503 deadline sheds).
"""

import asyncio
import json
import random

from repro.errors import ReproError


class ServeHttpError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status, payload):
        self.status = status
        self.payload = payload
        message = payload.get("error", payload) \
            if isinstance(payload, dict) else payload
        super().__init__("HTTP %d: %s" % (status, message))


#: Connection-level failures a retry can address.
_CONNECTION_ERRORS = (ConnectionError, BrokenPipeError,
                      ConnectionResetError, asyncio.IncompleteReadError)


class ServeClient:
    """One keep-alive connection to a serve frontend.

    Args:
        host / port: The frontend's listen address.
        retries: Retry budget for *safe* requests (GETs and keyed
            mutations) after connection failures or retryable statuses.
        backoff_s / backoff_cap_s: Exponential backoff base and cap.
        jitter: Random fraction added to each backoff (0.25 = up to
            +25%), decorrelating a fleet of retrying clients.
    """

    def __init__(self, host, port, retries=2, backoff_s=0.05,
                 backoff_cap_s=2.0, jitter=0.25):
        self.host = host
        self.port = int(port)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.jitter = float(jitter)
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def _connect(self):
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    def _backoff(self, attempt, retry_after=None):
        delay = min(self.backoff_cap_s,
                    self.backoff_s * (2 ** (attempt - 1)))
        delay *= 1.0 + self.jitter * random.random()
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    async def request(self, method, path, body=None, raise_for_status=True,
                      idempotency_key=None, deadline_ms=None,
                      retries=None, retry_statuses=()):
        """One request/response; returns ``(status, payload)``.

        ``payload`` is parsed JSON for JSON responses, raw text
        otherwise (``GET /metrics``).  Non-2xx raises
        :class:`ServeHttpError` unless ``raise_for_status=False``.

        ``idempotency_key`` / ``deadline_ms`` become the
        ``Idempotency-Key`` and ``X-Deadline-Ms`` headers; the key also
        marks the request safe to retry after a mid-response
        connection death.  ``retry_statuses`` (e.g. ``(429, 503)``)
        additionally retries those response codes — for safe requests
        only — honoring the server's ``Retry-After``.
        """
        data = b"" if body is None else json.dumps(body).encode()
        extra = ""
        if idempotency_key is not None:
            extra += "Idempotency-Key: %s\r\n" % idempotency_key
        if deadline_ms is not None:
            extra += "X-Deadline-Ms: %d\r\n" % int(deadline_ms)
        head = (
            "%s %s HTTP/1.1\r\n"
            "Host: %s:%d\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "%s"
            "Connection: keep-alive\r\n\r\n"
            % (method, path, self.host, self.port, len(data), extra)
        ).encode("latin-1")
        budget = self.retries if retries is None else int(retries)
        safe = method == "GET" or idempotency_key is not None
        attempt = 0
        resend_grace = True    # one free resend for a stale keep-alive
        async with self._lock:
            while True:
                if self._writer is None:
                    await self._connect()
                sent = False
                try:
                    self._writer.write(head + data)
                    await self._writer.drain()
                    sent = True
                    status, payload, headers = await self._read_response()
                except _CONNECTION_ERRORS:
                    await self.close()
                    if not sent and resend_grace:
                        # The server closed the idle keep-alive socket
                        # between requests; it never saw this request,
                        # so an immediate resend is safe for any method.
                        resend_grace = False
                        continue
                    # The request may have executed server-side; only
                    # requests that are safe to repeat get retried.
                    if safe and attempt < budget:
                        attempt += 1
                        await asyncio.sleep(self._backoff(attempt))
                        continue
                    raise
                if status in retry_statuses and safe and attempt < budget:
                    attempt += 1
                    await asyncio.sleep(self._backoff(
                        attempt, headers.get("retry-after")
                    ))
                    continue
                break
        if raise_for_status and status >= 400:
            raise ServeHttpError(status, payload)
        return status, payload

    async def _read_response(self):
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(body) if body else {}, headers
        return status, body.decode(), headers

    # -- convenience wrappers -------------------------------------------

    async def create_tenant(self, payload, **kwargs):
        return (await self.request("POST", "/tenants", payload,
                                   **kwargs))[1]

    async def advise(self, tenant_id, options=None, **kwargs):
        body = {"options": options} if options else {}
        return await self.request("POST", "/tenants/%s/advise" % tenant_id,
                                  body, **kwargs)

    async def feed(self, tenant_id, records, **kwargs):
        return await self.request("POST", "/tenants/%s/trace" % tenant_id,
                                  {"records": records}, **kwargs)

    async def status(self):
        return (await self.request("GET", "/status"))[1]

    async def tenant_status(self, tenant_id):
        return (await self.request("GET",
                                   "/tenants/%s/status" % tenant_id))[1]

    async def metrics(self):
        return (await self.request("GET", "/metrics"))[1]

    async def slo(self):
        return (await self.request("GET", "/slo"))[1]

    async def debug_traces(self):
        return (await self.request("GET", "/debug/traces"))[1]

    async def debug_trace(self, trace_id, **kwargs):
        return await self.request("GET", "/debug/traces/%s" % trace_id,
                                  **kwargs)

    async def delete_tenant(self, tenant_id, **kwargs):
        return await self.request("DELETE", "/tenants/%s" % tenant_id,
                                  **kwargs)
