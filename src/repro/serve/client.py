"""Minimal asyncio JSON/HTTP client for the advisor service.

One :class:`ServeClient` is one keep-alive connection — exactly what a
closed-loop load-generator tenant needs: requests on a connection are
serialized, responses arrive in order, and reconnection is automatic
when the server closes the socket.  This is a test/bench tool, not a
general HTTP client; it speaks only the service's own subset.
"""

import asyncio
import json

from repro.errors import ReproError


class ServeHttpError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status, payload):
        self.status = status
        self.payload = payload
        message = payload.get("error", payload) \
            if isinstance(payload, dict) else payload
        super().__init__("HTTP %d: %s" % (status, message))


class ServeClient:
    """One keep-alive connection to a serve frontend."""

    def __init__(self, host, port):
        self.host = host
        self.port = int(port)
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def _connect(self):
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self):
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(self, method, path, body=None, raise_for_status=True):
        """One request/response; returns ``(status, payload)``.

        ``payload`` is parsed JSON for JSON responses, raw text
        otherwise (``GET /metrics``).  Non-2xx raises
        :class:`ServeHttpError` unless ``raise_for_status=False``.
        """
        data = b"" if body is None else json.dumps(body).encode()
        head = (
            "%s %s HTTP/1.1\r\n"
            "Host: %s:%d\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: %d\r\n"
            "Connection: keep-alive\r\n\r\n"
            % (method, path, self.host, self.port, len(data))
        ).encode("latin-1")
        async with self._lock:
            for attempt in (0, 1):
                if self._writer is None:
                    await self._connect()
                try:
                    self._writer.write(head + data)
                    await self._writer.drain()
                    status, payload = await self._read_response()
                    break
                except (ConnectionResetError, BrokenPipeError,
                        asyncio.IncompleteReadError):
                    # The server closed the keep-alive socket between
                    # requests; reconnect once and retry.
                    await self.close()
                    if attempt:
                        raise
        if raise_for_status and status >= 400:
            raise ServeHttpError(status, payload)
        return status, payload

    async def _read_response(self):
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        if headers.get("content-type", "").startswith("application/json"):
            return status, json.loads(body) if body else {}
        return status, body.decode()

    # -- convenience wrappers -------------------------------------------

    async def create_tenant(self, payload, **kwargs):
        return (await self.request("POST", "/tenants", payload,
                                   **kwargs))[1]

    async def advise(self, tenant_id, options=None, **kwargs):
        body = {"options": options} if options else {}
        return await self.request("POST", "/tenants/%s/advise" % tenant_id,
                                  body, **kwargs)

    async def feed(self, tenant_id, records, **kwargs):
        return await self.request("POST", "/tenants/%s/trace" % tenant_id,
                                  {"records": records}, **kwargs)

    async def status(self):
        return (await self.request("GET", "/status"))[1]

    async def tenant_status(self, tenant_id):
        return (await self.request("GET",
                                   "/tenants/%s/status" % tenant_id))[1]

    async def metrics(self):
        return (await self.request("GET", "/metrics"))[1]

    async def slo(self):
        return (await self.request("GET", "/slo"))[1]

    async def debug_traces(self):
        return (await self.request("GET", "/debug/traces"))[1]

    async def debug_trace(self, trace_id, **kwargs):
        return await self.request("GET", "/debug/traces/%s" % trace_id,
                                  **kwargs)

    async def delete_tenant(self, tenant_id, **kwargs):
        return await self.request("DELETE", "/tenants/%s" % tenant_id,
                                  **kwargs)
