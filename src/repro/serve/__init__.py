"""Advisor-as-a-service: the async multi-tenant serving layer.

The paper frames the advisor as a standalone tool an administrator runs
per system; this package runs it as a *service* — one long-lived
process hosting many tenant problems at once, the
storage-provisioning-as-a-service setting the paper's §8 gestures at.
A shared, crash-tolerant solver pool (:mod:`repro.serve.pool`) does the
CPU work; a weighted-fair scheduler (:mod:`repro.serve.scheduler`)
keeps tenants from starving each other and sheds overload at a bounded
admission queue; each tenant (:mod:`repro.serve.tenant`) runs the full
online control loop server-side against its streamed trace; and a
hand-rolled JSON/HTTP front end (:mod:`repro.serve.http`) exposes the
lot, with Prometheus metrics per tenant and a graceful drain that
journals in-flight migrations for the next incarnation to finish.
"""

from repro.serve.pool import PoolCrashError, SolverPool
from repro.serve.scheduler import AdmissionError, FairScheduler, \
    TenantGoneError
from repro.serve.service import (
    AdvisorService,
    ServeConfig,
    ServiceDrainingError,
    UnknownTenantError,
)
from repro.serve.tenant import ServedController, Tenant, \
    records_from_payload

__all__ = [
    "AdmissionError",
    "AdvisorService",
    "FairScheduler",
    "PoolCrashError",
    "ServeConfig",
    "ServedController",
    "ServiceDrainingError",
    "SolverPool",
    "Tenant",
    "TenantGoneError",
    "UnknownTenantError",
    "records_from_payload",
]
