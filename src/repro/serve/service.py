"""The multi-tenant advisor service: admission, tenants, drain.

:class:`AdvisorService` is the serving layer's hub.  It owns the shared
:class:`~repro.serve.pool.SolverPool`, the
:class:`~repro.serve.scheduler.FairScheduler` in front of it, the
tenant table, and the service-level metrics registry; the HTTP front
end (:mod:`repro.serve.http`) is a thin translation onto the async
methods here, so tests can drive the service directly and the protocol
layer stays trivial.

Tenant lifecycle:

* ``create_tenant`` parses the problem JSON (the exact ``repro.cli
  advise`` schema) — or compiles a named library scenario
  (``{"scenario": "oltp-steady"}``) into that schema — registers the
  tenant with the fair scheduler, and
  either adopts an explicitly supplied layout or runs the initial
  advise through the shared pool (admission applies — creating hundreds
  of tenants at once is exactly the overload the bounded queue is for).
  Any uncommitted migration journal left in the tenant's state dir by a
  previous incarnation is resumed before the tenant serves traffic.
* ``feed_trace_chunk`` streams completion records into the tenant's
  server-side control loop on a worker thread (the loop is pure Python
  bookkeeping; re-solves it decides on go back through the shared pool
  as pre-admitted jobs).
* ``delete_tenant`` drops the tenant and fails its queued jobs;
  anything already executing on the pool finishes and is discarded —
  one tenant's removal never poisons the shared executor.

Drain (SIGTERM): new external work is refused with 503, in-flight
feeds and advises run to completion, in-flight *migrations* are left
as uncommitted journals on disk (the tenant's next incarnation finishes
them), and only then do the scheduler and pool shut down.
"""

import asyncio
import dataclasses
import os
import re
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.obs import Instrumentation
from repro.obs.export import prometheus_text_multi
from repro.obs.slo import SloEngine, SloObjective
from repro.online.controller import ControllerConfig
from repro.serve.durability import TenantWAL, recover_state_dir, \
    write_snapshot
from repro.serve.pool import DeadlineError, SolverPool, advise_job, \
    resolve_job
from repro.serve.scheduler import (AdmissionError, FairScheduler,
                                   TenantGoneError)
from repro.serve.tenant import Tenant, records_from_payload
from repro.serve.tracing import DEFAULT_RING, AccessLog, RequestTrace, \
    TraceRing

_TENANT_ID = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: ControllerConfig fields a tenant may override at create time.
_TUNABLE = {f.name for f in dataclasses.fields(ControllerConfig)} - {
    "journal_dir",
}


class UnknownTenantError(ReproError):
    """No such tenant (HTTP 404)."""


class UnknownTraceError(ReproError):
    """No such trace in the debug ring (HTTP 404)."""


class ServiceDrainingError(ReproError):
    """The service is draining and takes no new work (HTTP 503)."""


def status_for(error):
    """Map a service-layer exception onto an HTTP status code."""
    if isinstance(error, AdmissionError):
        return 429
    if isinstance(error, (TenantGoneError, UnknownTenantError,
                          UnknownTraceError)):
        return 404
    if isinstance(error, (ServiceDrainingError, DeadlineError)):
        return 503
    if isinstance(error, (ReproError, ValueError, KeyError)):
        return 400
    return 500


def retry_after_for(error):
    """Whole seconds for a ``Retry-After`` header, or None.

    Shed load (admission full, deadline expired, draining) is
    retryable by construction; everything else is not.
    """
    if isinstance(error, (AdmissionError, DeadlineError)):
        return 1
    if isinstance(error, ServiceDrainingError):
        return 5
    return None


@dataclasses.dataclass
class ServeConfig:
    """Serving-layer knobs.

    Attributes:
        host / port: Listen address (port 0 picks a free port).
        workers: Shared solver pool size.
        use_processes: ``False`` runs solver jobs on threads (tests).
        max_pending: Admission bound on queued solver jobs.
        feed_threads: Worker threads applying trace chunks.
        state_dir: Root for per-tenant state (migration journals, the
            write-ahead log, and snapshots); ``None`` disables all
            durability.
        snapshot_every: Take a compacting snapshot of a tenant every
            this many applied trace chunks (0 disables periodic
            snapshots; one is still written at drain and after
            recovery).
        request_timeout_s: Kill a connection whose request does not
            arrive whole within this window once its first byte lands
            (HTTP 408 — slowloris guard).  ``None`` disables it.
        default_deadline_s: Deadline stamped on advise/create solver
            work when the request carries no ``X-Deadline-Ms`` header;
            ``None`` means no deadline unless the client asks.
        trace_requests: Record a stitched cross-process trace per
            external request (``False`` disables request tracing;
            solver jobs then run uninstrumented).
        trace_ring: How many finished request traces the
            ``/debug/traces`` ring retains.
        access_log: Path for the JSONL access log (one line per
            request: trace_id, tenant, status, queue_wait_s, solve_s,
            rung); ``None`` disables it.
        slo: Default per-tenant SLO objective overrides
            (``{"p50_s", "p99_s", "slo_target", "window"}``); tenants
            may override at create time via their payload's ``slo``.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    use_processes: bool = True
    max_pending: int = 64
    feed_threads: int = 4
    state_dir: str = None
    snapshot_every: int = 16
    request_timeout_s: float = 30.0
    default_deadline_s: float = None
    trace_requests: bool = True
    trace_ring: int = DEFAULT_RING
    access_log: str = None
    slo: dict = None


class AdvisorService:
    """Hosts many tenant advisors on one solver pool."""

    def __init__(self, config=None):
        self.config = config or ServeConfig()
        self.obs = Instrumentation.on()
        self.metrics = self.obs.metrics
        self.tenants = {}
        self.draining = False
        self.started_s = time.time()
        self.pool = SolverPool(workers=self.config.workers,
                               use_processes=self.config.use_processes)
        self.scheduler = FairScheduler(self.pool,
                                       max_pending=self.config.max_pending,
                                       metrics=self.metrics)
        self._feeds = ThreadPoolExecutor(
            max_workers=max(1, int(self.config.feed_threads)),
            thread_name_prefix="repro-serve-feed",
        )
        self.slo = SloEngine(SloObjective.from_payload(self.config.slo))
        self.traces = TraceRing(self.config.trace_ring)
        self.access_log = (AccessLog(self.config.access_log)
                           if self.config.access_log else None)
        self._loop = None
        self._seq = 0
        #: Idempotency-Key → {tenant, route, response} replay cache
        #: (WAL-backed; rebuilt by recovery).
        self._idem = {}
        #: Summary of the last startup recovery (None before one ran).
        self.recovery = None

    # ------------------------------------------------------------------
    # Request tracing
    # ------------------------------------------------------------------

    def begin_trace(self, route, tenant=None):
        """A :class:`RequestTrace` for one external request, or None
        when request tracing is disabled."""
        if not self.config.trace_requests:
            return None
        return RequestTrace(route, tenant=tenant)

    def end_trace(self, rtrace, status=200, error=None):
        """Finalize a request trace: close the root span, publish to
        the debug ring and access log, and feed the SLO engine.
        Idempotent — the first close wins, so a service method that
        owns its trace and the HTTP layer can both call this safely."""
        if rtrace is None or rtrace.closed:
            return
        rtrace.close(status, error=error)
        self.traces.add(rtrace)
        if self.access_log is not None:
            entry = rtrace.meta()
            entry.pop("type", None)
            self.access_log.write(entry)
        if rtrace.route == "advise" and rtrace.tenant is not None:
            # Client errors (4xx: unknown tenant, bad options) are not
            # the service failing the tenant's objective; shed load
            # (429) likewise consumes no error budget here — it shows
            # up in the rejected counter instead.
            code = rtrace.status if rtrace.status is not None else 500
            if code < 400 or code >= 500:
                self.slo.observe(rtrace.tenant, rtrace.duration_s or 0.0,
                                 error=code >= 500)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self.scheduler.start()
        if self.config.state_dir is not None:
            # Recovery is pure bookkeeping (no pool work) but fsyncs
            # fresh snapshots; keep that off the event loop.
            await self._loop.run_in_executor(None, self.recover)
        return self

    async def drain(self):
        """Graceful shutdown: finish committed work, journal the rest.

        Order matters: feeds may block on pool re-solves, so the feed
        executor drains while the scheduler is still dispatching; only
        when both are quiet are in-flight migrations suspended to their
        journals and the pool torn down.
        """
        self.draining = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._feeds.shutdown)
        await self.scheduler.join()
        await self.scheduler.stop()
        for tenant in self.tenants.values():
            tenant.suspend()
            # A parting snapshot makes the next boot's replay trivial;
            # the suspended journal (if any) stays uncommitted on disk
            # for the successor to resume.
            self._snapshot_tenant(tenant)
            if tenant.wal is not None:
                tenant.wal.close()
        await loop.run_in_executor(None, self.pool.shutdown)
        if self.access_log is not None:
            self.access_log.close()

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------

    def _tenant(self, tenant_id):
        tenant = self.tenants.get(tenant_id)
        if tenant is None or tenant.deleted:
            raise UnknownTenantError("no tenant %r" % tenant_id)
        return tenant

    def _check_open(self):
        if self.draining:
            raise ServiceDrainingError("service is draining; no new work")

    def _controller_config(self, overrides, tenant_id):
        values = {}
        for key, value in (overrides or {}).items():
            if key not in _TUNABLE:
                raise ReproError("unknown controller option %r" % key)
            values[key] = value
        if self.config.state_dir is not None:
            values["journal_dir"] = os.path.join(self.config.state_dir,
                                                 tenant_id)
        return ControllerConfig(**values)

    def _advise_options(self, config, extra=None):
        options = {
            "method": config.solver_method,
            "restarts": config.restarts,
            "regular": config.regular,
            "solve_budget_s": config.solve_budget_s,
        }
        options.update(extra or {})
        return options

    def _solve_fn(self, tenant_id):
        """Blocking bridge from a tenant's feed thread to the pool.

        Re-solves triggered by an admitted trace chunk are pre-admitted:
        the service already accepted the chunk, so shedding its follow-up
        would silently drop a control decision.
        """
        def run(problem, initial_matrix):
            tenant = self._tenant(tenant_id)
            options = self._advise_options(tenant.config,
                                           {"regular": False})
            # The feed thread parked the active request's trace on the
            # tenant (under its lock) before entering the control loop;
            # the re-solve job joins that trace.
            future = asyncio.run_coroutine_threadsafe(
                self.scheduler.submit(tenant_id, resolve_job, problem,
                                      initial_matrix, options,
                                      preadmitted=True,
                                      rtrace=tenant.active_rtrace),
                self._loop,
            )
            return future.result()
        return run

    async def create_tenant(self, payload, rtrace=None, deadline=None,
                            idempotency_key=None):
        """Admit a tenant; returns its id, layout, and resume count.

        Like :meth:`advise`, the service owns the request trace when
        called without ``rtrace`` (tests, embedded use); the HTTP layer
        passes one in and finalizes it after serialization.
        """
        owned = rtrace is None
        if owned:
            rtrace = self.begin_trace("create_tenant")
        try:
            response = await self._create_tenant(payload, rtrace,
                                                 deadline,
                                                 idempotency_key)
        except BaseException as error:
            if owned:
                self.end_trace(rtrace, status_for(error), error=error)
            raise
        if owned:
            self.end_trace(rtrace)
        return response

    async def _create_tenant(self, payload, rtrace, deadline=None,
                             idempotency_key=None):
        self._check_open()
        replayed = self._idempotent_replay(idempotency_key)
        if replayed is not None:
            return replayed
        if not isinstance(payload, dict):
            raise ReproError("create_tenant needs a 'problem' description")
        if "scenario" in payload:
            # A scenario name (or path) stands in for an inline problem:
            # compile the spec and lower its targets/baseline mix into
            # the advise problem schema.
            if "problem" in payload:
                raise ReproError("create_tenant takes 'problem' or "
                                 "'scenario', not both")
            from repro.scenarios import compile_scenario, load_scenario

            compiled = compile_scenario(
                load_scenario(str(payload["scenario"])),
                seed=payload.get("scenario_seed"),
            )
            payload = dict(payload)
            payload["problem"] = compiled.problem_payload()
        if "problem" not in payload:
            raise ReproError("create_tenant needs a 'problem' description")
        tenant_id = payload.get("tenant_id")
        if tenant_id is None:
            self._seq += 1
            tenant_id = "tenant-%04d" % self._seq
        tenant_id = str(tenant_id)
        if not _TENANT_ID.match(tenant_id):
            raise ReproError("invalid tenant id %r" % tenant_id)
        if tenant_id in self.tenants:
            raise ReproError("tenant %r already exists" % tenant_id)

        from repro.cli import load_problem

        problem = load_problem(payload["problem"])
        config = self._controller_config(payload.get("controller"),
                                         tenant_id)
        objective = SloObjective.from_payload(
            payload.get("slo"), default=self.slo.default_objective
        )
        weight = float(payload.get("weight", 1.0))
        if rtrace is not None:
            rtrace.tenant = tenant_id
            rtrace.root.set_tag("tenant", tenant_id)
        self.scheduler.register(tenant_id, weight=weight)
        try:
            if "layout" in payload:
                layout = self._explicit_layout(problem, payload["layout"])
            else:
                out = await self.scheduler.submit(
                    tenant_id, advise_job, problem,
                    self._advise_options(config), rtrace=rtrace,
                    deadline=deadline,
                )
                layout = self._explicit_layout(problem,
                                               out["payload"]["layout"])
        except BaseException:
            self.scheduler.forget(tenant_id)
            raise

        tenant = Tenant(tenant_id, problem, layout, config=config,
                        weight=weight, solve_fn=self._solve_fn(tenant_id),
                        problem_payload=payload["problem"],
                        controller_overrides=payload.get("controller"))
        self._attach_wal(tenant, objective)
        resumed = self._resume_journals(tenant)
        self.tenants[tenant_id] = tenant
        self.slo.register(tenant_id, objective)
        self.metrics.counter("repro_serve_tenants_created_total").inc()
        self.metrics.gauge("repro_serve_tenants").set(len(self.tenants))
        response = {
            "tenant": tenant_id,
            "layout": tenant.controller.layout.fractions_by_name(),
            "resumed_migrations": resumed,
            "slo": objective.to_dict(),
        }
        self._record_idempotency(idempotency_key, tenant_id,
                                 "create_tenant", response)
        if rtrace is not None:
            response["trace_id"] = rtrace.trace_id
        return response

    @staticmethod
    def _explicit_layout(problem, fractions):
        import numpy as np

        missing = [name for name in problem.object_names
                   if name not in fractions]
        if missing:
            raise ReproError("layout misses objects: %s"
                             % ", ".join(missing))
        matrix = np.asarray(
            [fractions[name] for name in problem.object_names], dtype=float
        )
        return problem.make_layout(matrix)

    def _resume_journals(self, tenant):
        """Finish uncommitted migrations a drained/crashed predecessor
        left in this tenant's state dir."""
        journal_dir = tenant.config.journal_dir
        if journal_dir is None or not os.path.isdir(journal_dir):
            return 0
        from repro.faults.journal import MigrationJournal

        resumed = 0
        for name in sorted(os.listdir(journal_dir)):
            match = re.match(r"migration-(\d+)\.jsonl$", name)
            if not match:
                continue
            # New journals must not collide with a predecessor's files.
            tenant.controller._journal_seq = max(
                tenant.controller._journal_seq, int(match.group(1))
            )
            path = os.path.join(journal_dir, name)
            if MigrationJournal.load(path).committed:
                continue  # the placement swap happened before the drain
            tenant.controller.resume_migration(path)
            resumed += 1
        if resumed:
            self.metrics.counter(
                "repro_serve_migrations_resumed_total"
            ).inc(resumed)
        return resumed

    # ------------------------------------------------------------------
    # Durability: WAL, snapshots, recovery
    # ------------------------------------------------------------------

    def _attach_wal(self, tenant, objective):
        """Open the tenant's WAL and make its creation durable."""
        if self.config.state_dir is None:
            return None
        directory = os.path.join(self.config.state_dir, tenant.tenant_id)
        wal = TenantWAL.resume(directory)
        tenant.attach_wal(wal, snapshot_every=self.config.snapshot_every,
                          snapshot_fn=self._snapshot_tenant)
        wal.append(
            "create", tenant_id=tenant.tenant_id,
            problem=tenant.problem_payload,
            controller=tenant.controller_overrides,
            weight=tenant.weight, slo=objective.to_dict(),
            layout={name: [float(f) for f in row] for name, row in
                    tenant.controller.layout.fractions_by_name().items()},
            journal_seq=tenant.controller._journal_seq,
        )
        return wal

    def _snapshot_tenant(self, tenant):
        """Write one compacting snapshot and truncate the tenant's WAL.

        Runs on whichever thread triggered it (the feed thread for
        periodic snapshots, the recovery thread at boot, the event loop
        at drain) — the write is atomic and the WAL seq counter is the
        coordination point, so no extra locking is needed beyond the
        callers' existing serialization.
        """
        wal = tenant.wal
        if wal is None:
            return None
        tenant_id = tenant.tenant_id
        state = tenant.persist_state()
        objective = self.slo.objective_for(tenant_id)
        if objective is not None:
            state["slo"] = objective.to_dict()
        state["slo_state"] = self.slo.persist_state(tenant_id)
        state["idempotency"] = {
            key: {"route": entry.get("route"),
                  "response": entry.get("response")}
            for key, entry in list(self._idem.items())
            if entry.get("tenant") == tenant_id
            and entry.get("route") != "delete_tenant"
        }
        state["wal_seq"] = wal.seq
        path = write_snapshot(wal.directory, state)
        wal.compact(wal.seq)
        self.metrics.counter("repro_serve_snapshots_total").inc()
        return path

    def recover(self):
        """Rebuild every tenant from ``state_dir`` (called at startup).

        Replays snapshot + WAL per tenant, reconciles migration
        journals (committed-but-unswapped journals are adopted without
        re-copying; uncommitted ones are resumed exactly once), restores
        SLO high-water marks and the idempotency cache, then writes a
        fresh snapshot so the *next* recovery starts from here.  One
        corrupt tenant is reported and skipped, never fatal.
        """
        started = time.perf_counter()
        span = self.obs.tracer.start("service.recover")
        states, errors = recover_state_dir(self.config.state_dir)
        errors = [(directory, error) for directory, error in errors]
        recovered = resumed = adopted = 0
        skipped_lines = 0
        for state in states:
            try:
                tenant_resumed, tenant_adopted = \
                    self._recover_tenant(state)
            except Exception as error:  # noqa: BLE001 — isolated
                errors.append((str(state.get("tenant_id")), error))
                continue
            recovered += 1
            resumed += tenant_resumed
            adopted += tenant_adopted
            skipped_lines += int(state.get("wal_skipped") or 0)
        elapsed = time.perf_counter() - started
        self.recovery = {
            "recovered_tenants": recovered,
            "resumed_migrations": resumed,
            "adopted_swaps": adopted,
            "wal_skipped_lines": skipped_lines,
            "errors": [[str(where), "%s" % error]
                       for where, error in errors],
            "elapsed_s": round(elapsed, 6),
        }
        self.metrics.gauge("repro_recovery_tenants").set(recovered)
        self.metrics.gauge("repro_recovery_seconds").set(elapsed)
        self.metrics.gauge("repro_recovery_resumed_migrations").set(
            resumed)
        self.metrics.gauge("repro_recovery_adopted_swaps").set(adopted)
        self.metrics.gauge("repro_recovery_wal_skipped_lines").set(
            skipped_lines)
        self.metrics.gauge("repro_recovery_errors").set(len(errors))
        self.obs.tracer.finish(span, tenants=recovered, resumed=resumed,
                               adopted=adopted, errors=len(errors))
        return self.recovery

    def _recover_tenant(self, state):
        """One tenant's state dict → a live, registered tenant."""
        from repro.cli import load_problem

        tenant_id = state["tenant_id"]
        problem = load_problem(state["problem"])
        config = self._controller_config(state.get("controller"),
                                         tenant_id)
        layout = self._explicit_layout(problem, state["layout"])
        weight = float(state.get("weight", 1.0))
        objective = SloObjective.from_payload(
            state.get("slo"), default=self.slo.default_objective
        )
        self.scheduler.register(tenant_id, weight=weight)
        tenant = Tenant(tenant_id, problem, layout, config=config,
                        weight=weight, solve_fn=self._solve_fn(tenant_id),
                        problem_payload=state["problem"],
                        controller_overrides=state.get("controller"))
        tenant.restore(state)
        wal = TenantWAL(os.path.join(self.config.state_dir, tenant_id),
                        start_seq=state["wal_seq"])
        tenant.attach_wal(wal,
                          snapshot_every=self.config.snapshot_every,
                          snapshot_fn=self._snapshot_tenant)
        resumed, adopted = self._reconcile_journals(tenant)
        self.tenants[tenant_id] = tenant
        self.slo.restore(tenant_id, objective, state.get("slo_state"))
        for key, entry in (state.get("idempotency") or {}).items():
            self._idem.setdefault(key, {
                "tenant": tenant_id, "route": entry.get("route"),
                "response": entry.get("response") or {},
            })
        self.metrics.gauge("repro_serve_wal_skipped_lines",
                           tenant=tenant_id).set(tenant.wal_skipped)
        if resumed:
            self.metrics.counter(
                "repro_serve_migrations_resumed_total"
            ).inc(resumed)
        match = re.match(r"^tenant-(\d+)$", tenant_id)
        if match:
            self._seq = max(self._seq, int(match.group(1)))
        self.metrics.gauge("repro_serve_tenants").set(len(self.tenants))
        # Fold everything just replayed into a fresh snapshot: the next
        # crash recovers from *here*, and journal reconciliation (the
        # swapped-journal list above all) is never repeated.
        self._snapshot_tenant(tenant)
        return resumed, adopted

    def _reconcile_journals(self, tenant):
        """Recovery-time journal sweep; returns (resumed, adopted).

        Three cases per journal: committed and already in the WAL's
        swapped list — nothing to do; committed but never swapped in
        the WAL (crash between journal commit and WAL append) — adopt
        the layout without re-copying and write the missing swap record
        now; uncommitted — resume, which finishes the tail chunks,
        commits, installs, and WALs the swap, exactly once.
        """
        journal_dir = tenant.config.journal_dir
        if journal_dir is None or not os.path.isdir(journal_dir):
            return 0, 0
        from repro.faults.journal import MigrationJournal

        resumed = adopted = 0
        now = tenant.last_time if tenant.last_time is not None else 0.0
        for name in sorted(os.listdir(journal_dir)):
            match = re.match(r"migration-(\d+)\.jsonl$", name)
            if not match:
                continue
            tenant.controller._journal_seq = max(
                tenant.controller._journal_seq, int(match.group(1))
            )
            path = os.path.join(journal_dir, name)
            if MigrationJournal.load(path).committed:
                if name in tenant._swapped_journals:
                    continue
                tenant.controller.adopt_committed_swap(path, now=now)
                tenant.record_swap(name)
                adopted += 1
            else:
                tenant.controller.resume_migration(path)
                resumed += 1
        return resumed, adopted

    # ------------------------------------------------------------------
    # Idempotency and deadlines
    # ------------------------------------------------------------------

    def _idempotent_replay(self, key):
        """The recorded response for a seen Idempotency-Key, or None."""
        if not key:
            return None
        entry = self._idem.get(key)
        if entry is None:
            return None
        self.metrics.counter("repro_serve_idempotent_replays_total").inc()
        response = dict(entry.get("response") or {})
        response["replayed"] = True
        return response

    def _record_idempotency(self, key, tenant_id, route, response):
        """WAL + cache one keyed mutation's response for replay."""
        if not key:
            return
        safe = {k: v for k, v in response.items() if k != "trace_id"}
        tenant = self.tenants.get(tenant_id)
        if tenant is not None and tenant.wal is not None:
            tenant.wal.append("idem", key=str(key), route=route,
                              response=safe)
        self._idem[str(key)] = {"tenant": tenant_id, "route": route,
                                "response": safe}

    def deadline_from(self, headers=None, deadline_ms=None):
        """Mint an absolute request deadline at admission, or None.

        Precedence: an explicit ``deadline_ms``, then the request's
        ``X-Deadline-Ms`` header, then the service default.
        """
        if deadline_ms is None and headers:
            raw = headers.get("x-deadline-ms")
            if raw is not None:
                try:
                    deadline_ms = float(raw)
                except ValueError:
                    raise ReproError(
                        "X-Deadline-Ms must be a number, got %r" % raw
                    ) from None
        if deadline_ms is not None:
            seconds = float(deadline_ms) / 1000.0
        elif self.config.default_deadline_s is not None:
            seconds = float(self.config.default_deadline_s)
        else:
            return None
        if seconds <= 0:
            raise ReproError("deadline must be positive")
        return time.perf_counter() + seconds

    async def delete_tenant(self, tenant_id, idempotency_key=None):
        replayed = self._idempotent_replay(idempotency_key)
        if replayed is not None:
            return replayed
        tenant = self._tenant(tenant_id)
        tenant.deleted = True
        del self.tenants[tenant_id]
        self.scheduler.forget(tenant_id)
        self.slo.forget(tenant_id)
        tenant.suspend()
        if tenant.wal is not None:
            tenant.wal.append("delete", tenant_id=tenant_id)
            tenant.wal.close()
        self.metrics.gauge("repro_serve_tenants").set(len(self.tenants))
        response = {"tenant": tenant_id, "deleted": True}
        if idempotency_key:
            # In-memory only: the tenant's WAL ends with its delete
            # record, so a replay after a *restart* answers 404 instead
            # — an acceptable answer to "delete something gone".
            self._idem[idempotency_key] = {
                "tenant": tenant_id, "route": "delete_tenant",
                "response": dict(response),
            }
        return response

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    async def advise(self, tenant_id, options=None, rtrace=None,
                     deadline=None):
        """One-shot advise for a tenant's problem on the shared pool.

        Called without ``rtrace`` (tests, embedded use) the service
        owns the request trace end to end; the HTTP layer passes one in
        and finalizes it itself after serializing the response.

        ``deadline`` (absolute ``time.perf_counter()`` seconds, as
        minted by :meth:`deadline_from`) sheds the solver job once
        expired and clamps its watchdog budget to whatever remains.
        """
        self._check_open()
        owned = rtrace is None
        if owned:
            rtrace = self.begin_trace("advise", tenant=tenant_id)
        try:
            admission = (rtrace.start("admission.wait")
                         if rtrace is not None else None)
            tenant = self._tenant(tenant_id)
            merged = self._advise_options(tenant.config, options)
            if admission is not None:
                rtrace.finish(admission)
            started = time.perf_counter()
            out = await self.scheduler.submit(tenant_id, advise_job,
                                              tenant.problem, merged,
                                              rtrace=rtrace,
                                              deadline=deadline)
            tenant.advises += 1
            self.metrics.histogram("repro_serve_advise_seconds").observe(
                time.perf_counter() - started
            )
        except BaseException as error:
            if owned:
                self.end_trace(rtrace, status_for(error), error=error)
            raise
        response = {
            "tenant": tenant_id,
            "solver_time_s": out["solver_time_s"],
            **out["payload"],
        }
        if rtrace is not None:
            response["trace_id"] = rtrace.trace_id
        if owned:
            self.end_trace(rtrace)
        return response

    async def feed_trace_chunk(self, tenant_id, entries, rtrace=None,
                               idempotency_key=None):
        """Stream completion records into the tenant's control loop.

        With an ``idempotency_key``, a retried chunk (client saw the
        connection die mid-response) replays the recorded response
        instead of advancing the tenant's clock twice.
        """
        self._check_open()
        replayed = self._idempotent_replay(idempotency_key)
        if replayed is not None:
            return replayed
        owned = rtrace is None
        if owned:
            rtrace = self.begin_trace("feed", tenant=tenant_id)
        try:
            tenant = self._tenant(tenant_id)
            records = records_from_payload(entries)
            self.metrics.counter("repro_serve_records_total").inc(
                len(records)
            )
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(self._feeds, tenant.feed,
                                                records, rtrace)
        except BaseException as error:
            if owned:
                self.end_trace(rtrace, status_for(error), error=error)
            raise
        self._record_idempotency(idempotency_key, tenant_id, "feed",
                                 result)
        if rtrace is not None:
            result = dict(result)
            result["trace_id"] = rtrace.trace_id
        if owned:
            self.end_trace(rtrace)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self):
        scheduler = self.scheduler
        return {
            "tenants": len(self.tenants),
            "draining": self.draining,
            "uptime_s": round(time.time() - self.started_s, 3),
            "queue": {
                "pending": scheduler.pending,
                "inflight": scheduler.inflight,
                "completed": scheduler.completed,
                "rejected": scheduler.rejected,
                "deadline_shed": scheduler.deadline_shed,
                "max_pending": scheduler.max_pending,
            },
            "durability": {
                "state_dir": self.config.state_dir,
                "snapshot_every": self.config.snapshot_every,
                "wal_skipped_lines": {
                    tenant_id: tenant.wal_skipped
                    for tenant_id, tenant in sorted(self.tenants.items())
                    if tenant.wal_skipped
                },
                "idempotency_keys": len(self._idem),
                "recovery": self.recovery,
            },
            "pool": {
                "workers": self.pool.max_workers,
                "processes": self.pool.use_processes,
                "generation": self.pool.generation,
            },
            "tracing": {
                "enabled": bool(self.config.trace_requests),
                "ring": len(self.traces),
                "ring_capacity": self.traces.capacity,
                "access_log": (self.access_log.path
                               if self.access_log is not None else None),
            },
            "slo": self.slo.snapshot_all(),
        }

    def slo_report(self):
        """The ``GET /slo`` payload: every tenant's SLO standing."""
        return {
            "default_objective": self.slo.default_objective.to_dict(),
            "tenants": self.slo.snapshot_all(),
        }

    def debug_traces(self):
        """Summaries of the traces currently held in the debug ring."""
        summaries = []
        for rtrace in self.traces.traces():
            entry = rtrace.meta()
            entry.pop("type", None)
            summaries.append(entry)
        return {"capacity": self.traces.capacity, "traces": summaries}

    def debug_trace(self, trace_id):
        """One stitched request trace, spans and all (HTTP 404 when it
        has aged out of the ring or never existed)."""
        rtrace = self.traces.get(str(trace_id))
        if rtrace is None:
            raise UnknownTraceError(
                "no trace %r in the debug ring (capacity %d)"
                % (trace_id, self.traces.capacity)
            )
        return rtrace.to_payload()

    def tenant_status(self, tenant_id):
        tenant = self._tenant(tenant_id)
        status = tenant.status()
        status["served_solver_s"] = round(
            self.scheduler.served_seconds(tenant_id), 6
        )
        status["jobs_done"] = self.scheduler.jobs_done(tenant_id)
        if tenant.wal is not None:
            status["wal_seq"] = tenant.wal.seq
            status["wal_skipped"] = tenant.wal_skipped
        return status

    def tenant_events(self, tenant_id):
        return {"tenant": tenant_id,
                "events": list(self._tenant(tenant_id).controller.log)}

    def metrics_text(self):
        """The whole service as one Prometheus exposition document:
        the service registry plus every tenant's, labelled."""
        self.slo.export_to(self.metrics)
        sections = [({}, self.metrics)]
        for tenant_id, tenant in sorted(self.tenants.items()):
            sections.append(({"tenant": tenant_id}, tenant.obs.metrics))
        return prometheus_text_multi(sections)

    def fairness_spread(self, keys=None):
        return self.scheduler.fairness_spread(keys)
