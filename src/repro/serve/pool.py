"""The shared solver pool behind the serving layer.

Every tenant's CPU-heavy work — one-shot advises and drift re-solves —
funnels into one :class:`SolverPool`, a ``ProcessPoolExecutor`` shared
across tenants so the service consolidates many small layout problems
onto a fixed worker budget (the provisioning-as-a-service setting).
Jobs are module-level functions taking picklable arguments and
returning plain JSON-safe dicts, so the pool works under any
multiprocessing start method and results can go straight onto the wire.

The pool is self-healing: a worker that dies hard (``os._exit``, OOM
kill, segfault) breaks a ``ProcessPoolExecutor`` permanently, so the
pool detects ``BrokenProcessPool``, fails only the jobs in flight, and
rebuilds the executor — one crashing tenant job must not poison the
service for everyone else.  Environments that cannot fork at all demote
the pool to threads once, keeping the service alive (slower, but
correct).
"""

import asyncio
import functools
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.advisor import LayoutAdvisor
from repro.core.regularize import regularize
from repro.core.solver import SolveResult, solve
from repro.core.watchdog import solve_with_watchdog
from repro.errors import ReproError
from repro.obs import Instrumentation


class PoolCrashError(ReproError):
    """The worker executing this job died; the pool was rebuilt."""


class DeadlineError(ReproError):
    """The request's deadline expired before its work ran (HTTP 503).

    Raised at admission when the deadline is already in the past, by
    the fair scheduler when a queued job's deadline lapses before
    dispatch (the job is shed without wasting a worker), and by a pool
    job that finds its wall-clock deadline gone on entry."""


def _deadline_guard(options, job_name):
    """Shed a job whose wall-clock deadline already passed.

    Deadlines cross the process boundary as ``options["deadline_unix"]``
    (wall clock — monotonic clocks do not travel between processes);
    returns the remaining seconds, or None when the job carries no
    deadline.  The scheduler already clamps ``solve_budget_s`` to the
    remaining *monotonic* deadline at dispatch; this guard catches the
    executor's own queueing delay on a saturated pool.
    """
    deadline = (options.get("deadline_unix")
                if isinstance(options, dict) else None)
    if deadline is None:
        return None
    remaining = float(deadline) - time.time()
    if remaining <= 0:
        raise DeadlineError(
            "deadline expired before %s started; retry later" % job_name
        )
    return remaining


def _clamped_budget(options, remaining):
    """The watchdog budget honoring both the caller and the deadline."""
    budget = options.get("solve_budget_s") if isinstance(options, dict) \
        else None
    if remaining is None:
        return budget
    if budget is None:
        return remaining
    return min(float(budget), remaining)


# ----------------------------------------------------------------------
# Job entry points (must be module-level: workers import them by name)
# ----------------------------------------------------------------------

def _worker_obs(options, job_name):
    """Live instrumentation for a traced job, or ``(None, None)``.

    A job is traced when its options carry a ``trace_ctx`` dict (the
    wire form of :class:`~repro.obs.TraceContext`).  The worker then
    records its whole pipeline under a root span tagged with the trace
    id and its OS pid, and ships the span tree + counters back with the
    result so the parent can stitch them into the request trace.
    """
    ctx = options.get("trace_ctx") if isinstance(options, dict) else None
    if not ctx:
        return None, None
    obs = Instrumentation.on()
    root = obs.tracer.start(job_name, trace_id=ctx["trace_id"],
                            pid=os.getpid())
    return obs, root


def _obs_payload(obs, root, ctx):
    """Serialize a traced worker's spans + metrics for the result dict."""
    obs.tracer.finish(root)
    return {
        "trace_id": ctx["trace_id"],
        "pid": os.getpid(),
        "spans": obs.tracer.to_records(),
        "metrics": obs.metrics.to_records(),
    }


def advise_job(problem, options):
    """One-shot advise: the full Figure-4 pipeline, in a worker.

    Returns ``{"payload": AdvisorResult.to_payload(), "solver_time_s"}``
    — the same JSON shape ``repro.cli advise --json`` prints, plus the
    worker-measured wall time the fair scheduler charges the tenant.
    Traced jobs (``options["trace_ctx"]``) additionally carry an
    ``"obs"`` payload with the worker's span tree and counters.
    """
    started = time.perf_counter()
    remaining = _deadline_guard(options, "advise")
    obs, root = _worker_obs(options, "worker.advise")
    result = LayoutAdvisor(
        problem,
        regular=bool(options.get("regular", False)),
        restarts=int(options.get("restarts", 1)),
        method=options.get("method", "auto"),
        seed=int(options.get("seed", 0)),
        solve_budget_s=_clamped_budget(options, remaining),
        obs=obs,
    ).recommend()
    out = {
        "payload": result.to_payload(),
        "rung": result.watchdog_rung,
        "solver_time_s": time.perf_counter() - started,
    }
    if obs is not None:
        out["obs"] = _obs_payload(obs, root, options["trace_ctx"])
    return out


def resolve_job(problem, initial_matrix, options):
    """Warm-started drift re-solve for a served tenant, in a worker.

    Returns the candidate layout as a plain matrix plus diagnostics;
    :class:`~repro.serve.tenant.ServedController` rebuilds a
    :class:`~repro.core.solver.SolveResult` from it on the way back.
    """
    import numpy as np

    started = time.perf_counter()
    remaining = _deadline_guard(options, "resolve")
    obs, root = _worker_obs(options, "worker.resolve")
    initial = problem.make_layout(np.asarray(initial_matrix, dtype=float))
    budget = _clamped_budget(options, remaining)
    method = options.get("method", "auto")
    restarts = int(options.get("restarts", 1))
    rung = ""
    degraded = False
    if budget is not None:
        watchdog = solve_with_watchdog(
            problem, initial=initial, warm_start=True, budget_s=budget,
            method=method, restarts=restarts, obs=obs,
        )
        result = watchdog.result
        rung = watchdog.rung
        degraded = watchdog.degraded
    else:
        result = solve(problem, initial=initial, warm_start=True,
                       method=method, restarts=restarts, obs=obs)
    layout = result.layout
    if options.get("regular"):
        layout = regularize(problem, layout)
    out = {
        "matrix": [[float(f) for f in row] for row in layout.matrix],
        "objective": float(result.objective),
        "method": result.method,
        "rung": rung,
        "degraded": degraded,
        "solver_time_s": time.perf_counter() - started,
    }
    if obs is not None:
        out["obs"] = _obs_payload(obs, root, options["trace_ctx"])
    return out


def rebuild_solve_result(problem, out):
    """Inflate a :func:`resolve_job` dict back into a ``SolveResult``."""
    import numpy as np

    layout = problem.make_layout(np.asarray(out["matrix"], dtype=float))
    utilizations = problem.evaluator().utilizations(layout.matrix)
    return SolveResult(
        layout=layout,
        objective=float(out["objective"]),
        utilizations=utilizations,
        method=out["method"],
        evaluations=0,
        elapsed_s=float(out["solver_time_s"]),
        success=True,
    )


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------

class SolverPool:
    """A crash-tolerant process pool shared by every tenant.

    Args:
        workers: Worker process count (also the concurrency cap the
            fair scheduler dispatches against).
        use_processes: ``False`` runs jobs on threads instead — for
            tests and for hosts where forking is unavailable.
    """

    def __init__(self, workers=2, use_processes=True):
        self.max_workers = max(1, int(workers))
        self.use_processes = bool(use_processes)
        #: Incremented every time a broken executor is replaced.
        self.generation = 0
        self._executor = self._make_executor()

    def _make_executor(self):
        if self.use_processes:
            try:
                return ProcessPoolExecutor(max_workers=self.max_workers)
            except (OSError, NotImplementedError):
                self.use_processes = False
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="repro-serve-solver")

    async def run(self, fn, *args):
        """Run ``fn(*args)`` on the pool; await and return its result.

        A hard worker death surfaces as :class:`PoolCrashError` for the
        affected job only; the executor is rebuilt before the error is
        raised, so the next job runs on a fresh pool.
        """
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, functools.partial(fn, *args)
            )
        except BrokenProcessPool:
            self._rebuild()
            raise PoolCrashError(
                "solver worker died executing %s; pool rebuilt"
                % getattr(fn, "__name__", fn)
            ) from None
        except OSError:
            # Forking refused at submit time (sandboxed host): demote to
            # threads once and retry the job there.
            if self.use_processes:
                self.use_processes = False
                self._rebuild()
                return await loop.run_in_executor(
                    self._executor, functools.partial(fn, *args)
                )
            raise

    def _rebuild(self):
        old = self._executor
        self.generation += 1
        self._executor = self._make_executor()
        try:
            old.shutdown(wait=False)
        except Exception:  # noqa: BLE001 — a broken pool may refuse even this
            pass

    def shutdown(self, wait=True):
        self._executor.shutdown(wait=wait)
