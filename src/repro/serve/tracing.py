"""Per-request distributed traces for the serving layer.

One external request — an advise, a trace-chunk feed, a tenant create —
gets one :class:`RequestTrace`: a private live tracer whose root span
covers the whole request, a :class:`~repro.obs.TraceContext` that rides
into solver-pool jobs as a plain dict, and slots for the breakdown the
access log and the SLO engine need (queue wait, solve time, watchdog
rung).  Keeping the tracer per-request means the hot serving path never
contends on one shared span list, and a finished trace is a
self-contained artifact: the ring buffer and ``/debug/traces/<id>`` can
hand it out without touching live service state.

Threading: the HTTP handler and the scheduler touch a request's trace
from the event loop; feed work touches it from a tenant worker thread —
but never concurrently for the *same* request (the handler awaits the
feed).  All serve-layer spans are started detached with explicit
parents, so the tracer's parent stack is never shared across threads.

Worker processes stamp spans with their own monotonic clocks;
:meth:`RequestTrace.graft` anchors each remote tree so its last
finished span lands at the parent-observed arrival time (see
:meth:`repro.obs.trace.Tracer.graft_records` for the skew rules).
"""

import json
import os
import threading
import time
from collections import deque

from repro.obs import Instrumentation, TraceContext

#: Default capacity of the debug trace ring.
DEFAULT_RING = 64


class RequestTrace:
    """The stitched cross-process trace of one request.

    Args:
        route: Short route label (``"advise"``, ``"feed"``, ...).
        tenant: Tenant id, when the route has one.
    """

    def __init__(self, route, tenant=None):
        self.obs = Instrumentation.on()
        self.tracer = self.obs.tracer
        self.ctx = TraceContext.mint()
        self.trace_id = self.ctx.trace_id
        self.route = str(route)
        self.tenant = tenant
        self.status = None
        self.error = None
        self.queue_wait_s = None
        self.solve_s = None
        self.rung = None
        self.worker_pids = set()
        self.started_unix = time.time()
        self._closed = False
        tags = {"trace_id": self.trace_id, "route": self.route,
                "pid": os.getpid()}
        if tenant is not None:
            tags["tenant"] = tenant
        self.root = self.tracer.start("request", parent=False,
                                      detached=True, **tags)

    # -- span recording (detached, explicit parents) --------------------

    def start(self, name, parent=None, **tags):
        """Open a detached span under ``parent`` (the root by default)."""
        return self.tracer.start(
            name, parent=parent if parent is not None else self.root,
            detached=True, **tags,
        )

    def finish(self, span, **tags):
        return self.tracer.finish(span, **tags)

    def event(self, name, **tags):
        span = self.start(name, **tags)
        span.end_s = span.start_s
        return span

    # -- cross-process propagation --------------------------------------

    def worker_context(self, span):
        """The picklable context a worker acting under ``span`` carries."""
        return self.ctx.child(span).to_dict()

    def graft(self, obs_payload, parent=None, end_at=None, metrics=None):
        """Stitch a worker's serialized obs payload into this trace.

        ``obs_payload`` is the ``{"trace_id", "pid", "spans", "metrics"}``
        dict a pool job attaches to its result.  Remote spans land under
        ``parent`` (default: the root), skew-anchored at ``end_at``;
        batch roots are tagged with the worker pid.  Worker counters
        merge into ``metrics`` (e.g. the service registry) when given.
        """
        if not obs_payload:
            return []
        spans = self.tracer.graft_records(
            obs_payload.get("spans", ()),
            parent=parent if parent is not None else self.root,
            end_at=end_at,
        )
        pid = obs_payload.get("pid")
        if pid is not None:
            self.worker_pids.add(int(pid))
            attach_id = (parent if parent is not None
                         else self.root).span_id
            for span in spans:
                if span.parent_id == attach_id:
                    span.set_tag("pid", pid)
        if metrics is not None and getattr(metrics, "enabled", False):
            records = obs_payload.get("metrics")
            if records:
                metrics.merge_records(records)
        return spans

    # -- completion -----------------------------------------------------

    def close(self, status=200, error=None):
        """Finish the root span; idempotent (first close wins)."""
        if self._closed:
            return self
        self._closed = True
        self.status = int(status)
        if error is not None:
            self.error = str(error)
            self.root.set_tag("error", self.error)
        self.root.set_tag("status", self.status)
        self.tracer.finish(self.root)
        return self

    @property
    def closed(self):
        return self._closed

    @property
    def duration_s(self):
        return self.root.duration_s

    # -- serialization --------------------------------------------------

    def meta(self):
        """The request-summary record (the access-log line's payload)."""
        duration = self.root.duration_s
        return {
            "type": "request",
            "trace_id": self.trace_id,
            "route": self.route,
            "tenant": self.tenant,
            "status": self.status,
            "error": self.error,
            "unix_time": round(self.started_unix, 6),
            "duration_s": (round(duration, 6) if duration is not None
                           else None),
            "queue_wait_s": (round(self.queue_wait_s, 6)
                             if self.queue_wait_s is not None else None),
            "solve_s": (round(self.solve_s, 6)
                        if self.solve_s is not None else None),
            "rung": self.rung,
            "worker_pids": sorted(self.worker_pids),
        }

    def to_records(self):
        """JSONL records: one ``request`` meta line plus every span."""
        return [self.meta()] + self.tracer.to_records()

    def to_payload(self):
        """The ``/debug/traces/<id>`` response body."""
        payload = self.meta()
        payload.pop("type", None)
        payload["spans"] = self.tracer.to_records()
        return payload


class TraceRing:
    """Bounded, thread-safe ring of the last N finished request traces."""

    def __init__(self, capacity=DEFAULT_RING):
        self.capacity = max(1, int(capacity))
        self._ring = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def add(self, rtrace):
        with self._lock:
            self._ring.append(rtrace)

    def get(self, trace_id):
        """The trace with this id, or None (capacity is small; a linear
        scan beats maintaining an eviction-synced index)."""
        with self._lock:
            for rtrace in reversed(self._ring):
                if rtrace.trace_id == trace_id:
                    return rtrace
        return None

    def traces(self):
        """Newest-first snapshot of the ring."""
        with self._lock:
            return list(reversed(self._ring))

    def __len__(self):
        with self._lock:
            return len(self._ring)


class AccessLog:
    """Append-only JSONL access log, one line per finished request.

    Lines are written whole under a lock and flushed immediately, so a
    tail -f (or the CI artifact collector) always sees complete JSON.
    """

    def __init__(self, path):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a")
        self._lock = threading.Lock()
        self._closed = False

    def write(self, entry):
        line = json.dumps(entry) + "\n"
        with self._lock:
            if self._closed:
                return
            self._handle.write(line)
            self._handle.flush()

    def close(self):
        with self._lock:
            if not self._closed:
                self._closed = True
                self._handle.close()
