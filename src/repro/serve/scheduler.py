"""Admission control and weighted-fair scheduling of solver work.

Every request that needs solver CPU — an advise, a drift re-solve —
becomes a *job* queued per tenant.  Admission is a single bounded count
across all tenants: when ``max_pending`` jobs are already waiting, new
external work is rejected with :class:`AdmissionError` (the HTTP layer
turns that into a 429), so an overloaded service degrades by shedding
load instead of by growing an unbounded backlog.  Internal follow-up
work (a re-solve spawned by an already-admitted trace chunk) is
pre-admitted: rejecting it would waste the work the service already
accepted.

Dispatch is weighted-fair virtual-time (start-time fair queueing): each
tenant carries a virtual clock that advances by ``charged_seconds /
weight`` per completed job, and the dispatcher always serves the
backlogged tenant with the smallest clock.  A tenant that was idle
re-enters at the current virtual time — fairness does not accumulate
credit while idle — so one large tenant can never starve the rest, and
two tenants at equal weight receive solver time within a small constant
of each other no matter how unequal their demand.

Jobs are dispatched in micro-batches: every scheduling round fills all
free pool slots at once (up to ``batch_max``), so a many-core pool
starts many small tenant problems back to back instead of one per event
-loop wakeup.
"""

import asyncio
import time
from collections import deque

from repro.errors import ReproError
from repro.serve.pool import DeadlineError


class AdmissionError(ReproError):
    """The bounded admission queue is full; retry later (HTTP 429)."""


class TenantGoneError(ReproError):
    """The tenant was deleted while this job waited (HTTP 404)."""


class _Job:
    __slots__ = ("key", "fn", "args", "future", "enqueued_s", "rtrace",
                 "queue_span", "deadline")

    def __init__(self, key, fn, args, future, rtrace=None, deadline=None):
        self.key = key
        self.fn = fn
        self.args = args
        self.future = future
        self.enqueued_s = time.perf_counter()
        self.rtrace = rtrace
        self.deadline = deadline  # absolute time.perf_counter() seconds
        self.queue_span = (rtrace.start("scheduler.queue", tenant=key)
                           if rtrace is not None else None)

    def remaining_s(self):
        """Seconds until this job's deadline (None = no deadline)."""
        if self.deadline is None:
            return None
        return float(self.deadline) - time.perf_counter()


class FairScheduler:
    """Bounded, weighted-fair dispatcher over a :class:`SolverPool`.

    Args:
        pool: The shared :class:`~repro.serve.pool.SolverPool`.
        max_pending: Global bound on queued (not yet dispatched) jobs;
            external submits beyond it raise :class:`AdmissionError`.
        batch_max: Micro-batch cap — at most this many dispatches per
            scheduling round.
        metrics: Optional metrics registry (queue depth gauge, admission
            and completion counters, queue-wait histogram).
    """

    def __init__(self, pool, max_pending=64, batch_max=None, metrics=None):
        self.pool = pool
        self.max_pending = int(max_pending)
        self.batch_max = int(batch_max or pool.max_workers)
        self.metrics = metrics
        self._queues = {}          # key -> deque[_Job]
        self._weights = {}         # key -> float
        self._vtimes = {}          # key -> virtual time (s / weight)
        self._served_s = {}        # key -> charged solver seconds
        self._jobs_done = {}       # key -> completed job count
        self._vclock = 0.0
        self.pending = 0
        self.inflight = 0
        self.rejected = 0
        self.completed = 0
        self.deadline_shed = 0
        self._wake = asyncio.Event()
        self._task = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self._stopped = False
        self._task = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="serve-fair-scheduler"
        )
        return self

    async def stop(self):
        """Stop dispatching; queued jobs fail, in-flight jobs finish."""
        self._stopped = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for key in list(self._queues):
            self._fail_queue(key, ReproError("scheduler stopped"))

    async def join(self):
        """Wait until every queued and in-flight job has completed."""
        while self.pending or self.inflight:
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------

    def register(self, key, weight=1.0):
        weight = float(weight)
        if weight <= 0:
            raise ReproError("tenant weight must be positive")
        self._weights[key] = weight
        # An idle or new tenant enters at the current virtual time: no
        # credit accumulates while away, no debt is carried in.
        self._vtimes[key] = max(self._vtimes.get(key, 0.0), self._vclock)
        self._queues.setdefault(key, deque())
        self._served_s.setdefault(key, 0.0)
        self._jobs_done.setdefault(key, 0)

    def forget(self, key):
        """Drop a tenant: queued jobs fail with :class:`TenantGoneError`
        (in-flight jobs finish on the pool; their results are simply
        discarded by the caller)."""
        self._fail_queue(key, TenantGoneError("tenant %r deleted" % key))
        self._queues.pop(key, None)
        self._weights.pop(key, None)
        self._vtimes.pop(key, None)

    def _fail_queue(self, key, error):
        queue = self._queues.get(key)
        if not queue:
            return
        while queue:
            job = queue.popleft()
            self.pending -= 1
            if job.queue_span is not None:
                job.rtrace.finish(job.queue_span,
                                  error=type(error).__name__)
            if not job.future.done():
                job.future.set_exception(error)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(self, key, fn, *args, preadmitted=False, rtrace=None,
                     deadline=None):
        """Queue ``fn(*args)`` for tenant ``key``; await its result.

        Raises :class:`AdmissionError` when the global bound is hit and
        the job is not ``preadmitted`` (follow-up work of an already
        admitted request bypasses admission — shedding it would waste
        work the service committed to).

        ``rtrace`` (a :class:`~repro.serve.tracing.RequestTrace`) makes
        the job part of that request's distributed trace: the queue
        wait and pool dispatch become spans, the worker result's obs
        payload is grafted under the dispatch span, and the trace's
        ``queue_wait_s`` / ``solve_s`` / ``rung`` slots are filled.

        ``deadline`` (absolute ``time.perf_counter()`` seconds) sheds
        the job with :class:`~repro.serve.pool.DeadlineError` — at
        submit when already expired, at dispatch when its queue wait
        ate the whole budget (no worker is wasted on a dead request),
        and clamps the solver watchdog budget to whatever deadline
        remains at dispatch.
        """
        if key not in self._queues:
            raise TenantGoneError("unknown tenant %r" % key)
        if deadline is not None and time.perf_counter() >= deadline:
            self.deadline_shed += 1
            self._count_deadline_shed("submit")
            raise DeadlineError(
                "deadline expired before admission; retry later"
            )
        if not preadmitted and self.pending >= self.max_pending:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.counter("repro_serve_rejected_total").inc()
            raise AdmissionError(
                "admission queue full (%d pending); retry later"
                % self.pending
            )
        job = _Job(key, fn, args,
                   asyncio.get_running_loop().create_future(),
                   rtrace=rtrace, deadline=deadline)
        self._queues[key].append(job)
        self.pending += 1
        self._gauge()
        self._wake.set()
        return await job.future

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _pick(self):
        """The backlogged tenant with the smallest virtual time."""
        best, best_vtime = None, None
        for key, queue in self._queues.items():
            if not queue:
                continue
            vtime = self._vtimes.get(key, 0.0)
            if best_vtime is None or vtime < best_vtime:
                best, best_vtime = key, vtime
        return best

    async def _dispatch_loop(self):
        while not self._stopped:
            await self._wake.wait()
            self._wake.clear()
            dispatched = 0
            while (not self._stopped
                   and self.inflight < self.pool.max_workers
                   and dispatched < self.batch_max):
                key = self._pick()
                if key is None:
                    break
                job = self._queues[key].popleft()
                self.pending -= 1
                remaining = job.remaining_s()
                if remaining is not None and remaining <= 0:
                    # Expired while queued: shed before it wastes a
                    # worker slot (503 + Retry-After at the HTTP layer).
                    self.deadline_shed += 1
                    self._count_deadline_shed("queue")
                    if job.queue_span is not None:
                        job.rtrace.finish(job.queue_span,
                                          error="DeadlineError")
                    if not job.future.done():
                        job.future.set_exception(DeadlineError(
                            "deadline expired after %.3fs in queue; "
                            "retry later"
                            % (time.perf_counter() - job.enqueued_s)
                        ))
                    continue
                self.inflight += 1
                dispatched += 1
                self._vclock = max(self._vclock,
                                   self._vtimes.get(key, 0.0))
                asyncio.get_running_loop().create_task(
                    self._run_job(job)
                )
            self._gauge()

    async def _run_job(self, job):
        started = time.perf_counter()
        if self.metrics is not None:
            self.metrics.histogram(
                "repro_serve_queue_wait_seconds"
            ).observe(started - job.enqueued_s)
        rtrace = job.rtrace
        dispatch_span = None
        args = job.args
        if rtrace is not None:
            rtrace.queue_wait_s = started - job.enqueued_s
            rtrace.finish(job.queue_span,
                          wait_s=round(rtrace.queue_wait_s, 6))
            dispatch_span = rtrace.start(
                "pool.dispatch",
                job=getattr(job.fn, "__name__", str(job.fn)),
                generation=self.pool.generation,
            )
        # By convention the job's last positional argument is its
        # options dict; a copy carries the picklable trace context and
        # the remaining deadline into the worker process.
        remaining = job.remaining_s()
        if args and isinstance(args[-1], dict) \
                and (dispatch_span is not None or remaining is not None):
            options = dict(args[-1])
            if dispatch_span is not None:
                options["trace_ctx"] = rtrace.worker_context(dispatch_span)
            if remaining is not None:
                remaining = max(0.0, remaining)
                # The watchdog budget never exceeds what is left of the
                # request's deadline; a job with no budget of its own
                # inherits the deadline as one.
                budget = options.get("solve_budget_s")
                options["solve_budget_s"] = (
                    remaining if budget is None
                    else min(float(budget), remaining)
                )
                options["deadline_unix"] = time.time() + remaining
            args = args[:-1] + (options,)
        try:
            result = await self.pool.run(job.fn, *args)
            error = None
        except BaseException as exc:  # noqa: BLE001 — forwarded to caller
            result, error = None, exc
        elapsed = time.perf_counter() - started
        if dispatch_span is not None:
            if error is not None:
                dispatch_span.set_tag("error", type(error).__name__)
            rtrace.finish(dispatch_span)
            if isinstance(result, dict):
                rtrace.solve_s = float(result.get("solver_time_s", elapsed))
                rung = result.get("rung")
                if rung:
                    rtrace.rung = rung
                    dispatch_span.set_tag("rung", rung)
                # Stitch the worker's span tree under the dispatch span
                # (anchored at result arrival) and fold its counters
                # into the service registry; the obs payload must not
                # leak into the HTTP response body.
                rtrace.graft(result.pop("obs", None), parent=dispatch_span,
                             end_at=dispatch_span.end_s,
                             metrics=self.metrics)
        # Charge the worker-measured solver time when the job reports
        # one (it excludes result-transfer overhead); fall back to the
        # dispatch-to-completion wall time.
        charged = elapsed
        if isinstance(result, dict):
            charged = float(result.get("solver_time_s", elapsed))
        key = job.key
        if key in self._weights:
            self._vtimes[key] = (self._vtimes.get(key, 0.0)
                                 + charged / self._weights[key])
        self._served_s[key] = self._served_s.get(key, 0.0) + charged
        self._jobs_done[key] = self._jobs_done.get(key, 0) + 1
        self.inflight -= 1
        self.completed += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_serve_jobs_total",
                outcome="error" if error is not None else "ok",
            ).inc()
        if not job.future.done():
            if error is not None:
                job.future.set_exception(error)
            else:
                job.future.set_result(result)
        elif error is not None and isinstance(error, asyncio.CancelledError):
            raise error
        self._wake.set()

    def _gauge(self):
        if self.metrics is not None:
            self.metrics.gauge("repro_serve_queue_depth").set(self.pending)

    def _count_deadline_shed(self, stage):
        if self.metrics is not None:
            self.metrics.counter("repro_serve_deadline_shed_total",
                                 stage=stage).inc()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def served_seconds(self, key):
        """Charged solver seconds for one tenant (fairness accounting)."""
        return self._served_s.get(key, 0.0)

    def jobs_done(self, key):
        return self._jobs_done.get(key, 0)

    def fairness_spread(self, keys=None):
        """max/min charged solver time across tenants (1.0 = perfectly
        fair at equal weights); None with fewer than two samples."""
        keys = list(keys if keys is not None else self._served_s)
        samples = [self._served_s.get(k, 0.0) for k in keys]
        samples = [s for s in samples if s > 0]
        if len(samples) < 2:
            return None
        return max(samples) / min(samples)
