"""JSON-over-HTTP front end on raw asyncio streams.

A deliberately small HTTP/1.1 subset — request line, headers,
``Content-Length`` bodies, keep-alive — hand-rolled on
``asyncio.start_server``: the service's protocol needs are tiny and a
framework dependency would dwarf them.  Every route is a thin
translation onto :class:`~repro.serve.service.AdvisorService`; errors
map onto status codes by exception type:

===============================================  ====
:class:`~repro.serve.scheduler.AdmissionError`    429
:class:`~repro.serve.scheduler.TenantGoneError`,
:class:`~repro.serve.service.UnknownTenantError`  404
:class:`~repro.serve.service.ServiceDrainingError`,
:class:`~repro.serve.pool.DeadlineError`           503
other :class:`~repro.errors.ReproError`,
``ValueError`` / ``KeyError`` (bad input)          400
anything else                                      500
===============================================  ====

Shed responses (429/503) carry a ``Retry-After`` header.  A request
that stalls mid-transfer after its first byte is dropped with 408
(slowloris guard; idle keep-alive connections may wait forever).
Mutating routes honor an ``Idempotency-Key`` header — a retried key
replays the recorded response, flagged ``"replayed": true`` — and
``X-Deadline-Ms`` mints a request deadline at admission that follows
the job through the scheduler and into the solver pool.

Routes::

    POST   /tenants                    create_tenant
    GET    /status                     service status
    GET    /metrics                    Prometheus exposition (all tenants)
    GET    /slo                        per-tenant SLO standing
    GET    /debug/traces               summaries of the trace ring
    GET    /debug/traces/{trace_id}    one stitched request trace
    POST   /tenants/{id}/advise        one-shot advise
    POST   /tenants/{id}/trace         feed_trace_chunk
    GET    /tenants/{id}/status        tenant status
    GET    /tenants/{id}/events        tenant event log
    DELETE /tenants/{id}               delete_tenant

Request tracing: the routes that do real work (create, advise, feed)
mint a :class:`~repro.serve.tracing.RequestTrace` at admission and pass
it down; the handler wraps response serialization in its own span and
finalizes the trace — success or error — so every traced request lands
in the debug ring and the access log exactly once.

During a drain the listener stops accepting new connections; responses
for work already admitted still flow out over their open sockets.
"""

import asyncio
import json

from repro.serve.service import retry_after_for, status_for

#: Request bodies above this are refused outright (64 MiB).
MAX_BODY = 64 << 20
#: Header block size limit.
MAX_HEADER = 64 << 10

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


async def _read_request(reader, timeout=None):
    """Parse one request; returns (method, path, headers, body) or None
    at a clean end of stream.

    ``timeout`` is the slowloris guard: an *idle* keep-alive connection
    may wait forever for its next request, but once the first byte
    lands the rest of the request must arrive within ``timeout``
    seconds or the request fails with 408.
    """
    try:
        first = await reader.readexactly(1)
    except asyncio.IncompleteReadError:
        return None
    if timeout is None:
        return await _read_rest(reader, first)
    try:
        return await asyncio.wait_for(_read_rest(reader, first), timeout)
    except asyncio.TimeoutError:
        raise _HttpError(408, "request not received whole within %.1fs"
                         % timeout) from None


async def _read_rest(reader, first):
    try:
        head = first + await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        raise _HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "header block too large") from None
    if len(head) > MAX_HEADER:
        raise _HttpError(413, "header block too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, "malformed request line")
    method, path = parts[0].upper(), parts[1]
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad Content-Length") from None
    if length < 0 or length > MAX_BODY:
        raise _HttpError(413, "body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response(status, payload, keep_alive, extra_headers=None):
    body = json.dumps(payload).encode()
    extra = "".join("%s: %s\r\n" % (name, value) for name, value in
                    (extra_headers or {}).items())
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n"
        "%s"
        "Connection: %s\r\n"
        "\r\n" % (status, _REASONS.get(status, "Unknown"), len(body),
                  extra, "keep-alive" if keep_alive else "close")
    )
    return head.encode("latin-1") + body


def _json_body(body):
    if not body:
        return {}
    try:
        return json.loads(body)
    except json.JSONDecodeError as error:
        raise _HttpError(400, "request body is not JSON: %s" % error) \
            from None


class HttpFrontend:
    """The asyncio server wrapping one :class:`AdvisorService`."""

    def __init__(self, service, host=None, port=None):
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server = None

    # -- lifecycle ------------------------------------------------------

    async def start(self):
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        """Drain: stop accepting, finish admitted work, shut down."""
        if self._server is not None:
            self._server.close()
        await self.service.drain()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    # -- connection handling --------------------------------------------

    async def _handle(self, reader, writer):
        timeout = self.service.config.request_timeout_s
        try:
            while True:
                try:
                    request = await _read_request(reader, timeout=timeout)
                except _HttpError as error:
                    writer.write(_response(error.status,
                                           {"error": str(error)}, False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                trace = {}
                extra_headers = {}
                try:
                    status, payload = await self._route(method, path, body,
                                                        headers, trace)
                except _HttpError as error:
                    status, payload = error.status, {"error": str(error)}
                except Exception as error:  # noqa: BLE001 — mapped to a code
                    status = status_for(error)
                    payload = {"error": "%s" % error,
                               "kind": type(error).__name__}
                    retry_after = retry_after_for(error)
                    if retry_after is not None:
                        extra_headers["Retry-After"] = "%d" % retry_after
                rtrace = trace.get("rtrace")
                if isinstance(payload, str):
                    data = payload.encode()
                    head = (
                        "HTTP/1.1 %d %s\r\n"
                        "Content-Type: text/plain; version=0.0.4\r\n"
                        "Content-Length: %d\r\n"
                        "Connection: %s\r\n\r\n"
                        % (status, _REASONS.get(status, "Unknown"),
                           len(data),
                           "keep-alive" if keep_alive else "close")
                    ).encode("latin-1")
                    writer.write(head + data)
                elif rtrace is not None:
                    span = rtrace.start("response.serialize")
                    data = _response(status, payload, keep_alive,
                                     extra_headers)
                    rtrace.finish(span, bytes=len(data))
                    error_text = (payload.get("error")
                                  if status >= 400
                                  and isinstance(payload, dict) else None)
                    self.service.end_trace(rtrace, status, error=error_text)
                    writer.write(data)
                else:
                    writer.write(_response(status, payload, keep_alive,
                                           extra_headers))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # CancelledError here means the loop is tearing down
                # mid-close; the socket is gone either way.
                pass

    # -- routing --------------------------------------------------------

    async def _route(self, method, path, body, headers=None, trace=None):
        """Dispatch one request.  ``trace`` (a dict) receives the
        request's :class:`RequestTrace` under ``"rtrace"`` as soon as
        one is minted, so the handler can finalize it even when the
        route body raises."""
        service = self.service
        trace = trace if trace is not None else {}
        headers = headers or {}
        idem_key = headers.get("idempotency-key")
        path = path.split("?", 1)[0]
        segments = [s for s in path.split("/") if s]

        if not segments:
            raise _HttpError(404, "no route for %s" % path)

        if segments == ["status"] and method == "GET":
            return 200, service.status()
        if segments == ["metrics"] and method == "GET":
            return 200, service.metrics_text()
        if segments == ["slo"] and method == "GET":
            return 200, service.slo_report()
        if segments[0] == "debug" and len(segments) >= 2 \
                and segments[1] == "traces" and method == "GET":
            if len(segments) == 2:
                return 200, service.debug_traces()
            if len(segments) == 3:
                return 200, service.debug_trace(segments[2])
        if segments[0] == "tenants":
            if len(segments) == 1:
                if method != "POST":
                    raise _HttpError(405, "POST /tenants")
                rtrace = service.begin_trace("create_tenant")
                trace["rtrace"] = rtrace
                return 200, await service.create_tenant(
                    _json_body(body), rtrace=rtrace,
                    deadline=service.deadline_from(headers),
                    idempotency_key=idem_key,
                )
            tenant_id = segments[1]
            if len(segments) == 2:
                if method == "DELETE":
                    return 200, await service.delete_tenant(
                        tenant_id, idempotency_key=idem_key
                    )
                if method == "GET":
                    return 200, service.tenant_status(tenant_id)
                raise _HttpError(405, "GET or DELETE /tenants/{id}")
            action = segments[2]
            if len(segments) == 3:
                if action == "advise" and method == "POST":
                    payload = _json_body(body)
                    rtrace = service.begin_trace("advise",
                                                 tenant=tenant_id)
                    trace["rtrace"] = rtrace
                    return 200, await service.advise(
                        tenant_id, payload.get("options"), rtrace=rtrace,
                        deadline=service.deadline_from(headers),
                    )
                if action == "trace" and method == "POST":
                    payload = _json_body(body)
                    entries = payload.get("records", payload) \
                        if isinstance(payload, dict) else payload
                    if not isinstance(entries, list):
                        raise _HttpError(
                            400, "trace body must be a record list or "
                                 "{\"records\": [...]}"
                        )
                    rtrace = service.begin_trace("feed", tenant=tenant_id)
                    trace["rtrace"] = rtrace
                    return 200, await service.feed_trace_chunk(
                        tenant_id, entries, rtrace=rtrace,
                        idempotency_key=idem_key,
                    )
                if action == "status" and method == "GET":
                    return 200, service.tenant_status(tenant_id)
                if action == "events" and method == "GET":
                    return 200, service.tenant_events(tenant_id)
        raise _HttpError(404, "no route for %s %s" % (method, path))


async def run_frontend(config, ready=None, stop_event=None):
    """Boot an :class:`AdvisorService` + frontend and serve until
    ``stop_event`` (an :class:`asyncio.Event`) fires; then drain.

    ``ready`` (optional callable) receives the frontend once listening —
    the CLI uses it to print the bound port, tests to capture it.
    """
    from repro.serve.service import AdvisorService

    frontend = HttpFrontend(AdvisorService(config))
    await frontend.start()
    if ready is not None:
        ready(frontend)
    if stop_event is None:
        stop_event = asyncio.Event()
    await stop_event.wait()
    await frontend.stop()
    return frontend
