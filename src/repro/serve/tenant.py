"""Per-tenant serving state: controller, clock, and migration pacing.

Each tenant the service hosts is one layout problem plus one
:class:`ServedController` — the ordinary online controller
(monitor → drift detect → warm re-solve → migrate) with two served
twists:

* re-solves run on the **shared solver pool** through the fair
  scheduler instead of in-process, via the ``solve_fn`` hook, so one
  tenant's drift storm cannot monopolize the service's CPU;
* accepted migrations are **journaled at accept time** and paced by the
  tenant's own trace clock.  A served migration is in flight from the
  moment the decision lands until enough trace time has passed to pay
  the copy bill; a drain (SIGTERM) that lands mid-flight leaves an
  uncommitted journal on disk that the tenant's next incarnation
  finishes via the controller's existing
  :meth:`~repro.online.controller.OnlineController.resume_migration`.

Tenants advance on *their* time, not wall time: trace chunks carry
simulated timestamps and the control loop (checks, migration pacing)
runs against those, exactly like
:meth:`~repro.online.controller.OnlineController.replay` — but
incrementally, chunk by chunk, holding the clock between HTTP requests.
"""

import os
import threading
from dataclasses import asdict

from repro.core.layout import Layout
from repro.core.migration import plan_migration
from repro.errors import ReproError
from repro.faults.journal import MigrationJournal
from repro.obs import Instrumentation
from repro.online.controller import ControllerConfig, OnlineController
from repro.serve.pool import rebuild_solve_result
from repro.storage.request import CompletionRecord
from repro.workload.spec import ObjectWorkload
from repro.workload.trace_io import _FIELDS

#: Trace-chunk record fields a client may omit, with their defaults.
_RECORD_DEFAULTS = {
    "submit_time": None,   # defaults to finish_time
    "target": "",
    "stream_id": 0,
    "kind": "read",
    "lba": 0,
    "logical_offset": None,
    "size": 8192,
    "service_time": 0.0,
}


def records_from_payload(entries):
    """Parse a ``feed_trace_chunk`` body into completion records.

    Each entry needs ``obj`` and ``finish_time``; everything else in
    the archived-trace schema (:data:`repro.workload.trace_io._FIELDS`)
    is optional with sensible defaults, so a thin client can stream
    just ``{"obj": ..., "finish_time": ..., "kind": ..., "size": ...}``.
    """
    records = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ReproError(
                "trace chunk record %d is not an object" % position
            )
        if "obj" not in entry or "finish_time" not in entry:
            raise ReproError(
                "trace chunk record %d needs 'obj' and 'finish_time'"
                % position
            )
        values = {}
        for field in _FIELDS:
            if field in entry:
                values[field] = entry[field]
            elif field == "obj":
                values[field] = entry["obj"]
            elif field == "finish_time":
                values[field] = float(entry["finish_time"])
            else:
                values[field] = _RECORD_DEFAULTS[field]
        if values["submit_time"] is None:
            values["submit_time"] = values["finish_time"]
        values["finish_time"] = float(values["finish_time"])
        values["submit_time"] = float(values["submit_time"])
        records.append(CompletionRecord(**values))
    return records


class ServedController(OnlineController):
    """An online controller whose solves and migrations are served.

    Args:
        solve_fn: Blocking callable ``(problem, initial_matrix) ->
            resolve_job dict`` that routes the warm re-solve through
            the service's fair-scheduled pool.  ``None`` falls back to
            the in-process solve (tests, standalone use).
        Everything else goes to
            :class:`~repro.online.controller.OnlineController`.

    Served migration semantics (``ctx is None`` always): an accepted
    plan immediately writes a chunk journal under
    ``config.journal_dir``, the controller marks itself migrating, and
    :meth:`pump_migration` — called by the tenant's feed loop as its
    trace clock advances — records copied chunks proportionally to
    elapsed trace time, committing and installing the layout when the
    estimated migration time has fully passed.
    """

    def __init__(self, *args, solve_fn=None, **kwargs):
        self._solve_fn = solve_fn
        self._served = None    # {"started": t, "cost_s": s} while in flight
        #: Called with the journal basename right after a migration's
        #: placement swap installs — the tenant's WAL hook.  The swap's
        #: own durable effect (the journal commit record) always
        #: precedes this call; that ordering is the recovery contract.
        self.on_swap = None
        super().__init__(*args, **kwargs)

    # -- solver routing -------------------------------------------------

    def _run_solve(self, problem):
        if self._solve_fn is None:
            return super()._run_solve(problem)
        initial = [[float(f) for f in row] for row in self.layout.matrix]
        out = self._solve_fn(problem, initial)
        return rebuild_solve_result(problem, out), out.get("rung", "")

    # -- journaled, trace-paced migration -------------------------------

    def _install(self, pending, now, bytes_moved, elapsed_s, virtual):
        fresh = (virtual
                 and pending.journal is None
                 and self.config.journal_dir is not None
                 and self._served is None
                 and bytes_moved > 0)
        if not fresh:
            super()._install(pending, now, bytes_moved, elapsed_s, virtual)
            return
        # Journal at accept: the plan is durable before any trace time
        # is spent "copying", so a drain or crash between accept and
        # completion leaves a resumable journal, never a lost decision.
        plan = plan_migration(self.layout, pending.layout, self.object_sizes)
        os.makedirs(self.config.journal_dir, exist_ok=True)
        self._journal_seq += 1
        path = os.path.join(self.config.journal_dir,
                            "migration-%04d.jsonl" % self._journal_seq)
        pending.journal = MigrationJournal.create(
            path, plan, self.config.migration_chunk,
            meta=self._journal_meta(pending.layout, pending.fitted,
                                    pending.predicted_util,
                                    pending.accepted_at),
        )
        cost_s = max(0.0, float(now) - float(pending.accepted_at))
        self._served = {"started": float(pending.accepted_at),
                        "cost_s": cost_s}
        self._pending = pending
        self.migrating = True
        self.log.emit(pending.accepted_at, "migration-journaled",
                      journal=os.path.basename(path),
                      plan_bytes=int(bytes_moved),
                      cost_s=round(cost_s, 4))

    def pump_migration(self, now):
        """Advance the in-flight migration to trace time ``now``.

        Chunks are recorded in the journal proportionally to elapsed
        trace time over the estimated copy duration; once the estimate
        has fully elapsed the journal is committed and the layout
        installed.  Returns True when a migration completed.
        """
        if self._served is None:
            return False
        state = self._served
        pending = self._pending
        journal = pending.journal
        if state["cost_s"] <= 0:
            fraction = 1.0
        else:
            fraction = (float(now) - state["started"]) / state["cost_s"]
        fraction = max(0.0, min(1.0, fraction))
        target = journal.total_chunks if fraction >= 1.0 else int(
            fraction * journal.total_chunks
        )
        for index in range(target):
            journal.record_chunk(index)
        if fraction < 1.0:
            return False
        journal.record_commit()
        journal.close()
        self._served = None
        self._pending = None
        self.migrating = False
        super()._install(pending, now, bytes_moved=pending.plan_bytes,
                         elapsed_s=state["cost_s"], virtual=True)
        if self.on_swap is not None:
            self.on_swap(os.path.basename(journal.path))
        return True

    def suspend_migration(self):
        """Drain: flush and close the in-flight journal, uncommitted.

        The chunks recorded so far stay durable; the next incarnation
        of this tenant resumes from the journal and finishes the rest.
        """
        if self._served is None:
            return None
        journal = self._pending.journal
        journal.close()
        return journal.path

    def resume_migration(self, journal_path):
        journal = super().resume_migration(journal_path)
        if not journal.committed:
            # The base class already installed the layout virtually
            # (ctx is None); finishing the journal records the tail
            # chunks as copied and commits, so recovery is idempotent.
            for index in journal.remaining():
                journal.record_chunk(index)
            journal.record_commit()
            journal.close()
            if self.on_swap is not None:
                self.on_swap(os.path.basename(str(journal_path)))
        return journal

    def adopt_committed_swap(self, journal_path, now=0.0):
        """Apply a committed journal's layout without re-copying.

        Recovery calls this for a journal whose commit record landed but
        whose ``swap`` line never reached the WAL (the crash hit the gap
        between the two).  The copy already happened; only the in-memory
        placement and drift baseline need to catch up to it.
        """
        journal = MigrationJournal.load(journal_path)
        meta = journal.meta or {}
        if not meta.get("layout"):
            return journal
        layout = self._aligned(Layout(
            [meta["layout"][obj] for obj in meta["objects"]],
            meta["objects"], meta["targets"],
        ))
        fitted = [ObjectWorkload(**spec) for spec in meta.get("fitted", [])]
        if not fitted:
            fitted = list(self.solved_workloads)
        now = max(float(now), float(meta.get("accepted_at", 0.0)))
        self.layout = layout
        self.solved_workloads = fitted
        self.detector.rebase(fitted,
                             float(meta.get("predicted_util", 0.0)), now)
        self.log.emit(now, "adopt-swap",
                      journal=os.path.basename(str(journal_path)))
        return journal


class Tenant:
    """One hosted tenant: problem, controller, clock, and accounting.

    Args:
        tenant_id: The tenant's name (also its metrics label).
        problem: The tenant's :class:`~repro.core.problem.LayoutProblem`.
        initial_layout: Layout currently in effect for the tenant.
        config: The tenant's :class:`ControllerConfig` (its
            ``journal_dir`` should point at the tenant's state dir).
        weight: Fair-share weight in the solver scheduler.
        solve_fn: Passed to :class:`ServedController`.

    All feed/advise bookkeeping is guarded by a lock: trace chunks for
    one tenant are applied strictly one at a time even when the client
    pipelines requests.
    """

    def __init__(self, tenant_id, problem, initial_layout, config=None,
                 weight=1.0, solve_fn=None, problem_payload=None,
                 controller_overrides=None):
        self.tenant_id = str(tenant_id)
        self.problem = problem
        #: Raw create-time payloads, kept verbatim for the WAL create
        #: record and for snapshots — recovery reparses them through the
        #: same ``load_problem`` / ``ControllerConfig`` path as create.
        self.problem_payload = problem_payload
        self.controller_overrides = dict(controller_overrides or {})
        self.weight = float(weight)
        self.obs = Instrumentation.on()
        self.config = config or ControllerConfig()
        sizes = {name: int(size) for name, size in
                 zip(problem.object_names, problem.sizes)}
        self.controller = ServedController(
            targets=problem.targets,
            object_sizes=sizes,
            initial_layout=initial_layout,
            solved_workloads=problem.workloads,
            stripe_size=problem.stripe_size,
            config=self.config,
            obs=self.obs,
            solve_fn=solve_fn,
        )
        self.lock = threading.Lock()
        self._next_check = None
        self.records_fed = 0
        self.chunks_fed = 0
        self.advises = 0
        self.last_time = None
        self.deleted = False
        #: Durability (attached by the service when a state_dir is set).
        self.wal = None
        self.wal_skipped = 0
        self.snapshot_every = 0
        self._snapshot_fn = None
        self._swapped_journals = []
        #: The request trace of the feed currently holding the lock;
        #: the service's ``solve_fn`` reads it so a re-solve triggered
        #: by this chunk joins the same distributed trace.
        self.active_rtrace = None

    # ------------------------------------------------------------------

    def feed(self, records, rtrace=None):
        """Apply one trace chunk: observe records, run due checks, pace
        any in-flight migration.  Blocking; call from a worker thread.

        Mirrors :meth:`OnlineController.replay`, but incrementally —
        the check clock persists between chunks, so a trace streamed in
        many small chunks makes the same decisions as one replayed in a
        single call.
        """
        with self.lock:
            span = (rtrace.start("tenant.feed", tenant=self.tenant_id,
                                 records=len(records))
                    if rtrace is not None else None)
            self.active_rtrace = rtrace
            try:
                records = sorted(records, key=lambda r: r.finish_time)
                controller = self.controller
                if records:
                    if (self.last_time is not None
                            and records[0].finish_time < self.last_time):
                        raise ReproError(
                            "trace chunk goes back in time (%.3f < %.3f)"
                            % (records[0].finish_time, self.last_time)
                        )
                    if self._next_check is None:
                        self._next_check = (records[0].finish_time
                                            + self.config.check_interval_s)
                    for record in records:
                        while record.finish_time >= self._next_check:
                            controller.pump_migration(self._next_check)
                            controller.check(self._next_check)
                            self._next_check += self.config.check_interval_s
                        controller.monitor.observe(record)
                    controller.pump_migration(records[-1].finish_time)
                    self.last_time = records[-1].finish_time
                    self.records_fed += len(records)
                    self.chunks_fed += 1
                    if self.wal is not None:
                        # The chunk's side effects (clock, counters, any
                        # swap pumped above — whose own record already
                        # landed via on_swap) become durable before the
                        # client sees the response.
                        self.wal.append(
                            "feed", clock_s=self.last_time,
                            next_check=self._next_check,
                            records_fed=self.records_fed,
                            chunks_fed=self.chunks_fed,
                            resolves=controller.resolves,
                        )
                        if (self._snapshot_fn is not None
                                and self.snapshot_every > 0
                                and self.chunks_fed % self.snapshot_every
                                == 0):
                            self._snapshot_fn(self)
                return self.status()
            finally:
                self.active_rtrace = None
                if span is not None:
                    rtrace.finish(span,
                                  resolves=self.controller.resolves)

    def status(self):
        """JSON-safe snapshot of the tenant's serving state."""
        controller = self.controller
        return {
            "tenant": self.tenant_id,
            "weight": self.weight,
            "advises": self.advises,
            "chunks_fed": self.chunks_fed,
            "records_fed": self.records_fed,
            "clock_s": self.last_time,
            "resolves": controller.resolves,
            "migrating": controller.migrating,
            "events": len(controller.log),
            "layout": {name: [round(float(f), 6) for f in row]
                       for name, row in
                       controller.layout.fractions_by_name().items()},
        }

    def suspend(self):
        """Drain hook: leave any in-flight migration journaled on disk."""
        with self.lock:
            return self.controller.suspend_migration()

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def attach_wal(self, wal, snapshot_every=0, snapshot_fn=None):
        """Wire a :class:`~repro.serve.durability.TenantWAL` in.

        ``snapshot_fn`` (called with this tenant every ``snapshot_every``
        chunks, on the feed thread under the tenant lock) is the
        service's compacting-snapshot hook — the service owns it because
        a snapshot also folds in SLO state and the idempotency cache.
        """
        self.wal = wal
        self.snapshot_every = int(snapshot_every)
        self._snapshot_fn = snapshot_fn
        self.controller.on_swap = self.record_swap
        return self

    def record_swap(self, journal_name):
        """WAL a completed placement swap (idempotent per journal)."""
        if journal_name in self._swapped_journals:
            return
        self._swapped_journals.append(journal_name)
        if self.wal is not None:
            controller = self.controller
            self.wal.append(
                "swap", journal=journal_name,
                journal_seq=controller._journal_seq,
                resolves=controller.resolves,
                layout={name: [float(f) for f in row] for name, row in
                        controller.layout.fractions_by_name().items()},
            )

    def persist_state(self):
        """The snapshot core: everything the tenant itself can vouch
        for (the service adds SLO state, idempotency, and ``wal_seq``).

        Call under the tenant lock (or before the tenant serves
        traffic) — snapshots taken mid-feed would tear the clock.
        """
        controller = self.controller
        return {
            "tenant_id": self.tenant_id,
            "problem": self.problem_payload,
            "controller": self.controller_overrides,
            "weight": self.weight,
            "layout": {name: [float(f) for f in row] for name, row in
                       controller.layout.fractions_by_name().items()},
            "clock_s": self.last_time,
            "next_check": self._next_check,
            "records_fed": self.records_fed,
            "chunks_fed": self.chunks_fed,
            "advises": self.advises,
            "resolves": controller.resolves,
            "monitor": controller.monitor.to_state(),
            "solved": [asdict(w) for w in controller.solved_workloads],
            "journal_seq": controller._journal_seq,
            "swapped_journals": list(self._swapped_journals),
            "snapshot_skipped": self.wal_skipped,
        }

    def restore(self, state):
        """Load a replayed state dict (see
        :func:`~repro.serve.durability.load_tenant_state`) into this
        freshly-constructed tenant; call before it serves traffic."""
        controller = self.controller
        self.last_time = state.get("clock_s")
        self._next_check = state.get("next_check")
        self.records_fed = int(state.get("records_fed") or 0)
        self.chunks_fed = int(state.get("chunks_fed") or 0)
        self.advises = int(state.get("advises") or 0)
        controller.resolves = int(state.get("resolves") or 0)
        controller.monitor.restore_state(state.get("monitor"))
        solved = state.get("solved")
        if solved:
            controller.solved_workloads = [
                ObjectWorkload(**spec) for spec in solved
            ]
        now = self.last_time if self.last_time is not None else 0.0
        solved_util = controller._predicted_util(
            controller.solved_workloads, controller.layout
        )
        controller.detector.rebase(controller.solved_workloads,
                                   solved_util, now)
        controller._journal_seq = int(state.get("journal_seq") or 0)
        self._swapped_journals = list(state.get("swapped_journals") or [])
        self.wal_skipped = int(state.get("wal_skipped") or 0)
        controller.log.emit(now, "recovered",
                            chunks_fed=self.chunks_fed,
                            records_fed=self.records_fed,
                            resolves=controller.resolves)
        return self
