"""Per-target utilization estimation (paper Eq. 1 and Figure 6).

A :class:`TargetModel` pairs a read and a write cost model for one
storage target.  :func:`estimate_utilization_matrix` is the full Figure-6
pipeline: apply the layout model to every object workload, compute
contention factors, look up per-request costs, and combine them into the
per-object-per-target utilizations

    µ_ij = λ^R_ij · CostR_j(B^R_i, Q_ij, χ_ij)
         + λ^W_ij · CostW_j(B^W_i, Q_ij, χ_ij)

whose column sums are the target utilizations µ_j the solver minimizes
the maximum of.
"""

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.workload.contention import contention_factors
from repro.workload.layout_model import (
    overlap_matrix,
    per_target_run_counts,
)


@dataclass
class TargetModel:
    """Read/write cost models for one storage target.

    The cost models only need a vectorized
    ``lookup(sizes, run_counts, chis) -> costs`` method, so calibrated
    :class:`~repro.models.table_model.TableCostModel` instances and the
    analytic models are interchangeable — the "plug in models for
    different targets" property the paper gets from MINOS external
    functions.
    """

    name: str
    read_model: object
    write_model: object

    def request_cost(self, kind, size, run_count, chi):
        model = self.read_model if kind == "read" else self.write_model
        return model.lookup(size, run_count, chi)

    def scaled(self, factor):
        """A degraded-device view: every request costs ``factor`` times
        the calibrated cost.

        This is how the online controller re-plans around a slowed
        device (fault kind ``degrade``): the device's cost model is
        scaled by the observed service-time multiplier, so the solver
        naturally shifts load away from it in proportion to how slow
        it has become.
        """
        return TargetModel(
            name=self.name,
            read_model=ScaledCostModel(self.read_model, factor),
            write_model=ScaledCostModel(self.write_model, factor),
        )


class ScaledCostModel:
    """Wraps a cost model, multiplying every looked-up cost.

    Exposes the same vectorized ``lookup`` the estimator needs, so a
    scaled model is usable anywhere a calibrated one is.
    """

    def __init__(self, model, factor):
        if factor <= 0:
            raise ValueError("cost scale factor must be positive")
        self.model = model
        self.factor = float(factor)

    def batch_key(self):
        """Batchable iff the wrapped model is, at the same factor."""
        inner = _batch_key(self.model)
        if inner is None:
            return None
        return ("scaled", inner, self.factor)

    def lookup(self, sizes, run_counts, chis):
        return self.model.lookup(sizes, run_counts, chis) * self.factor


def workload_arrays(workloads):
    """Extract numpy arrays from a list of workload specs.

    Returns a dict with keys ``read_rate``, ``write_rate``, ``read_size``,
    ``write_size``, ``total_rate``, ``mean_size``, ``run_count`` (each of
    shape (N,)) and ``overlap`` of shape (N, N) with a zero diagonal.
    The diagonal is normalized to zero unconditionally: Eq. 2 sums over
    ``k ≠ i``, and a self-overlap entry smuggled in through a workload
    spec (or a hand-built matrix) would double-count the object's own µ
    contribution in the incremental probe path.
    """
    overlap = overlap_matrix(workloads)
    np.fill_diagonal(overlap, 0.0)
    return {
        "read_rate": np.array([w.read_rate for w in workloads]),
        "write_rate": np.array([w.write_rate for w in workloads]),
        "read_size": np.array([w.read_size for w in workloads]),
        "write_size": np.array([w.write_size for w in workloads]),
        "total_rate": np.array([w.total_rate for w in workloads]),
        "mean_size": np.array([w.mean_size for w in workloads]),
        "run_count": np.array([w.run_count for w in workloads]),
        "overlap": overlap,
    }


def _batch_key(cost_model):
    """Structural identity of a cost model, or None when unbatchable.

    Cost models that can prove two instances produce identical lookups
    expose a hashable ``batch_key()``; models without one (e.g.
    per-target calibrated tables) fall back to singleton groups.
    """
    key = getattr(cost_model, "batch_key", None)
    if key is None:
        return None
    try:
        return key()
    except TypeError:
        return None


def batch_model_groups(models):
    """Group target indices whose read *and* write models are identical.

    Returns a list of ``(column_indices, representative_model)`` pairs
    covering every target exactly once.  The evaluator's probe loop runs
    one vectorized lookup per group instead of one per target, which is
    the difference between O(M) and O(#distinct-models) Python-level
    calls on homogeneous fleets.
    """
    groups = {}
    order = []
    for j, model in enumerate(models):
        read_key = _batch_key(model.read_model)
        write_key = _batch_key(model.write_model)
        if read_key is None or write_key is None:
            key = ("__singleton__", j)
        else:
            key = (read_key, write_key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(j)
    return [
        (np.array(groups[key], dtype=int), models[groups[key][0]])
        for key in order
    ]


def estimate_utilization_matrix(workloads, layout, models,
                                stripe_size=units.DEFAULT_STRIPE_SIZE,
                                arrays=None):
    """Estimate the (N, M) matrix of utilizations µ_ij.

    Args:
        workloads: List of N :class:`ObjectWorkload`.
        layout: Layout matrix, shape (N, M).
        models: Sequence of M :class:`TargetModel` (one per target).
        stripe_size: LVM stripe size used by the layout model.
        arrays: Optional precomputed :func:`workload_arrays` result — the
            solver calls this function thousands of times on fixed
            workloads, so extraction is hoisted.

    Returns:
        µ, an (N, M) numpy array.  ``µ.sum(axis=0)`` gives the target
        utilizations µ_j.
    """
    layout = np.asarray(layout, dtype=float)
    n_objects, n_targets = layout.shape
    if len(models) != n_targets:
        raise ValueError(
            "%d target models for %d targets" % (len(models), n_targets)
        )
    if arrays is None:
        arrays = workload_arrays(workloads)

    run_counts = per_target_run_counts(
        arrays["run_count"], arrays["mean_size"], layout, stripe_size
    )
    chi = contention_factors(arrays["total_rate"], arrays["overlap"], layout)

    mu = np.zeros((n_objects, n_targets))
    for cols, model in batch_model_groups(models):
        read_cost = model.read_model.lookup(
            arrays["read_size"][:, None], run_counts[:, cols], chi[:, cols]
        )
        write_cost = model.write_model.lookup(
            arrays["write_size"][:, None], run_counts[:, cols], chi[:, cols]
        )
        mu[:, cols] = (
            arrays["read_rate"][:, None] * layout[:, cols] * read_cost
            + arrays["write_rate"][:, None] * layout[:, cols] * write_cost
        )
    return mu


def estimate_utilizations(workloads, layout, models,
                          stripe_size=units.DEFAULT_STRIPE_SIZE,
                          arrays=None):
    """Target utilizations µ_j (shape (M,)): column sums of µ_ij."""
    return estimate_utilization_matrix(
        workloads, layout, models, stripe_size=stripe_size, arrays=arrays
    ).sum(axis=0)
