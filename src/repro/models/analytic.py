"""Closed-form analytic cost models.

The paper notes that accurate analytic models are "possible, but
difficult" and uses tabulated measurements instead.  These analytic
models exist as a fast, calibration-free alternative: they reproduce the
same qualitative surface (sequential discount that collapses under
contention, mild elevator gain for random requests, flat SSD behaviour)
and share the ``lookup`` interface with
:class:`~repro.models.table_model.TableCostModel`, so they can stand in
for calibrated models in tests and quick what-if analyses.
"""

import numpy as np

from repro.storage.disk import DiskParameters, ENTERPRISE_15K
from repro.storage.ssd import SsdParameters, SATA_SSD_2010


class AnalyticDiskCostModel:
    """Closed-form per-request cost for a (possibly RAID0) disk target.

    Args:
        params: Disk mechanical parameters.
        n_members: RAID0 member count; aggregate bandwidth scales with it
            and each member sees ``1/n`` of the requests, which shows up
            as an effective service-cost divisor for throughput purposes.
        kind: ``"read"`` or ``"write"``.
    """

    def __init__(self, params=ENTERPRISE_15K, n_members=1, kind="read"):
        self.params = params
        self.n_members = int(n_members)
        self.kind = kind

    def batch_key(self):
        """Structural identity: two instances with equal parameters
        produce identical lookups, so the evaluator may batch their
        targets into one vectorized call."""
        return ("analytic-disk", self.params, self.n_members, self.kind)

    def lookup(self, sizes, run_counts, chis):
        p = self.params
        # No explicit broadcast: the cost expression below mixes all
        # three inputs, so ordinary numpy broadcasting produces the full
        # output shape — and skipping np.broadcast_arrays keeps this
        # hot path (called once per probe per direction) cheap.
        sizes = np.asarray(sizes, dtype=float)
        run_counts = np.maximum(np.asarray(run_counts, dtype=float), 1.0)
        chis = np.maximum(np.asarray(chis, dtype=float), 0.0)

        transfer = sizes / p.transfer_bps
        # Elevator gain: average seek shrinks as the queue deepens.
        avg_seek = 0.65 * p.max_seek_s / (1.0 + 0.15 * chis)
        random_cost = p.overhead_s + avg_seek + p.rotation_s + transfer
        if self.kind == "write":
            random_cost = (
                p.overhead_s
                + (avg_seek + p.rotation_s) * p.write_penalty
                + transfer
            )
        sequential_cost = p.sequential_overhead_s + transfer

        # Probability the drive's prefetched data survives: collapses
        # once the contention factor exceeds the readahead depth.
        depth = float(p.readahead_depth)
        exponent = np.clip(4.0 * (chis - depth - 0.5), -50.0, 50.0)
        tracked = 1.0 / (1.0 + np.exp(exponent))

        hit_fraction = (run_counts - 1.0) / run_counts
        cost = (1.0 - hit_fraction) * random_cost + hit_fraction * (
            tracked * sequential_cost + (1.0 - tracked) * random_cost
        )
        return cost / self.n_members


class AnalyticSsdCostModel:
    """Closed-form per-request SSD cost: latency plus transfer, flat in Q/χ."""

    def __init__(self, params=SATA_SSD_2010, kind="read"):
        self.params = params
        self.kind = kind

    def batch_key(self):
        """Structural identity for cross-target lookup batching."""
        return ("analytic-ssd", self.params, self.kind)

    def lookup(self, sizes, run_counts, chis):
        p = self.params
        sizes = np.asarray(sizes, dtype=float)
        sizes, run_counts, chis = np.broadcast_arrays(
            sizes, np.asarray(run_counts, dtype=float),
            np.asarray(chis, dtype=float),
        )
        if self.kind == "write":
            per_request = p.write_latency_s + sizes / p.write_bps
        else:
            per_request = p.read_latency_s + sizes / p.read_bps
        # Channel parallelism: n concurrent requests share the package,
        # so per-request cost in utilization terms divides by channels.
        return np.full(sizes.shape, 0.0) + per_request / p.channels


def analytic_disk_target_model(name, params=ENTERPRISE_15K, n_members=1):
    """Convenience: a TargetModel with analytic read and write models."""
    from repro.models.target_model import TargetModel

    return TargetModel(
        name=name,
        read_model=AnalyticDiskCostModel(params, n_members, kind="read"),
        write_model=AnalyticDiskCostModel(params, n_members, kind="write"),
    )


def analytic_ssd_target_model(name, params=SATA_SSD_2010):
    """Convenience: a TargetModel with analytic SSD read/write models."""
    from repro.models.target_model import TargetModel

    return TargetModel(
        name=name,
        read_model=AnalyticSsdCostModel(params, kind="read"),
        write_model=AnalyticSsdCostModel(params, kind="write"),
    )
