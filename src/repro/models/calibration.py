"""Calibration harness: measure a device to build its cost models.

Mirrors the paper's methodology: "we construct the models by subjecting
the storage targets to calibration workloads with known request sizes,
run counts, and degrees of contention and measuring the request service
times, which are then tabulated."

Contention is produced by running competitor streams (uniform random
page reads) alongside the measured stream; because everything is
closed-loop the *realised* contention factor is measured from the trace
rather than assumed, and the scattered (chi, cost) samples are regridded
by :meth:`TableCostModel.from_samples`.
"""

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro import units
from repro.errors import CalibrationError
from repro.models.table_model import TableCostModel
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import RunStream, SimContext, SteadyStream
from repro.storage.target import StorageTarget


@dataclass(frozen=True)
class CalibrationConfig:
    """Grid and measurement parameters for device calibration.

    Attributes:
        sizes: Request sizes to calibrate (bytes).
        run_counts: Sequential run counts to calibrate.
        competitor_counts: Number of concurrent competitor streams per
            measurement; each count yields one realised contention level.
        n_requests: Measured requests per cell (more = less noise).
        warmup_fraction: Leading fraction of measured requests discarded.
        region_fraction: Fraction of device capacity the calibration
            object spans (seek distances scale with it).
        seed: RNG seed for reproducible request offsets.
    """

    sizes: Tuple[int, ...] = (units.kib(8), units.kib(64))
    run_counts: Tuple[int, ...] = (1, 4, 16, 64)
    competitor_counts: Tuple[int, ...] = (0, 1, 2, 4, 8)
    n_requests: int = 600
    warmup_fraction: float = 0.1
    region_fraction: float = 0.8
    seed: int = 7
    chi_grid: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def _measure_cell(device_factory, size, run_count, n_competitors, kind, config):
    """Run one calibration cell; return (realised_chi, mean_cost)."""
    engine = SimulationEngine()
    device = device_factory()
    trace = []
    target = StorageTarget(device, engine=engine, trace=trace)

    region = int(device.capacity * config.region_fraction)
    stripe = units.DEFAULT_STRIPE_SIZE
    region = max(stripe, (region // stripe) * stripe)
    placement = PlacementMap(
        {"calib": region}, {"calib": [1.0]}, [device.capacity], stripe_size=stripe
    )
    ctx = SimContext(engine, placement, [target])

    rng = np.random.default_rng(config.seed)
    competitors = [
        SteadyStream(ctx, "calib", run_count=1, rng=np.random.default_rng(
            config.seed + 100 + c), page=units.kib(8), window=1, kind="read")
        for c in range(n_competitors)
    ]

    def measured_done(_stream):
        for competitor in competitors:
            competitor.stop()

    measured = RunStream(
        ctx, "calib", n_requests=config.n_requests, run_count=run_count,
        rng=rng, page=size, window=1, kind=kind, on_done=measured_done,
    )

    for competitor in competitors:
        competitor.start()
    measured.start()
    engine.run()

    mine = [r for r in trace if r.stream_id == measured.stream_id]
    if len(mine) < config.n_requests:
        raise CalibrationError(
            "calibration cell lost requests (%d of %d completed)"
            % (len(mine), config.n_requests)
        )
    skip = int(len(mine) * config.warmup_fraction)
    costs = [r.service_time for r in mine[skip:]]
    mean_cost = float(np.mean(costs))

    # Report a *utilization-equivalent* cost: a target with internal
    # parallelism (RAID members, SSD channels) serves that many
    # requests concurrently, so each request occupies 1/parallelism of
    # the target.  Without this, the advisor would model a 3-disk RAID0
    # as a single serial server and underestimate its throughput.
    parallel_capacity = sum(unit.parallelism for unit in device.units)
    mean_cost /= max(1, parallel_capacity)

    window_start = mine[skip].submit_time
    window_end = mine[-1].finish_time
    competing = sum(
        1
        for r in trace
        if r.stream_id != measured.stream_id
        and window_start <= r.finish_time <= window_end
    )
    own = len(mine) - skip
    chi = competing / own if own else 0.0
    return chi, mean_cost


def calibrate_device(device_factory, config=None, kind="read"):
    """Calibrate one device type into a :class:`TableCostModel`.

    Args:
        device_factory: Zero-argument callable returning a *fresh*
            :class:`~repro.storage.device.Device` each call (state from
            one cell must not leak into the next).
        config: Calibration grid; defaults to :class:`CalibrationConfig`.
        kind: ``"read"`` or ``"write"`` — which cost model to build.
    """
    if config is None:
        config = CalibrationConfig()
    samples = []
    for size in config.sizes:
        for run_count in config.run_counts:
            for n_competitors in config.competitor_counts:
                chi, cost = _measure_cell(
                    device_factory, size, run_count, n_competitors, kind, config
                )
                samples.append((float(size), float(run_count), chi, cost))
    return TableCostModel.from_samples(samples, chi_grid=config.chi_grid)


def calibrate_target_model(device_factory, name, config=None):
    """Calibrate both read and write models and wrap them in a TargetModel."""
    from repro.models.target_model import TargetModel

    read_model = calibrate_device(device_factory, config=config, kind="read")
    write_model = calibrate_device(device_factory, config=config, kind="write")
    return TargetModel(name=name, read_model=read_model, write_model=write_model)
