"""Storage target performance models (paper Section 5.2.2).

The advisor never reasons about device internals; it consumes *black-box*
cost models built by calibration: the device is subjected to workloads
with known request sizes, run counts, and degrees of contention, the
measured request service times are tabulated, and lookups interpolate
among nearby calibration points.  An analytic closed-form model is also
provided as a fast sanity baseline.
"""

from repro.models.table_model import TableCostModel
from repro.models.calibration import (
    CalibrationConfig,
    calibrate_device,
    calibrate_target_model,
)
from repro.models.target_model import (
    TargetModel,
    estimate_utilization_matrix,
    estimate_utilizations,
    workload_arrays,
)
from repro.models.analytic import AnalyticDiskCostModel, AnalyticSsdCostModel

__all__ = [
    "TableCostModel",
    "CalibrationConfig",
    "calibrate_device",
    "calibrate_target_model",
    "TargetModel",
    "estimate_utilization_matrix",
    "estimate_utilizations",
    "workload_arrays",
    "AnalyticDiskCostModel",
    "AnalyticSsdCostModel",
]
