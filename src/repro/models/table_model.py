"""Tabulated, interpolating request-cost model.

A :class:`TableCostModel` stores measured per-request service costs on a
three-dimensional grid — request size × run count × contention factor —
and answers lookups by trilinear interpolation (log-spaced in size and
run count, log1p-spaced in contention).  "Although the behavior of
storage devices can be complex and highly non-linear, the generality of
the tabulation/interpolation approach allows us to model them accurately"
(paper §5.2.2); the same generality lets one model serve disks, SSDs, and
RAID groups without code changes.
"""

import numpy as np

from repro.errors import CalibrationError


def _axis_coordinates(values, transform):
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise CalibrationError("grid axes must be non-empty 1-D sequences")
    if np.any(np.diff(array) <= 0):
        raise CalibrationError("grid axes must be strictly increasing")
    return transform(array)


def _bracket(coords, queries):
    """Return (lower index, interpolation weight) clamped to the grid."""
    idx = np.searchsorted(coords, queries, side="right") - 1
    idx = np.clip(idx, 0, max(0, len(coords) - 2))
    if len(coords) == 1:
        return idx, np.zeros_like(queries, dtype=float)
    lo = coords[idx]
    hi = coords[idx + 1]
    weight = np.clip((queries - lo) / np.maximum(hi - lo, 1e-12), 0.0, 1.0)
    return idx, weight


class TableCostModel:
    """Interpolated per-request cost table.

    Args:
        sizes: Grid of request sizes (bytes), strictly increasing.
        run_counts: Grid of run counts, strictly increasing, >= 1.
        contentions: Grid of contention factors, strictly increasing, >= 0.
        costs: Array of shape (len(sizes), len(run_counts),
            len(contentions)) of per-request service costs in seconds.
    """

    def __init__(self, sizes, run_counts, contentions, costs):
        self.sizes = np.asarray(sizes, dtype=float)
        self.run_counts = np.asarray(run_counts, dtype=float)
        self.contentions = np.asarray(contentions, dtype=float)
        self.costs = np.asarray(costs, dtype=float)
        expected = (len(self.sizes), len(self.run_counts), len(self.contentions))
        if self.costs.shape != expected:
            raise CalibrationError(
                "cost table shape %s does not match grid %s"
                % (self.costs.shape, expected)
            )
        if np.any(~np.isfinite(self.costs)) or np.any(self.costs < 0):
            raise CalibrationError("cost table contains invalid entries")
        self._size_coords = _axis_coordinates(self.sizes, np.log)
        self._run_coords = _axis_coordinates(self.run_counts, np.log)
        self._chi_coords = _axis_coordinates(self.contentions, np.log1p)

    def lookup(self, sizes, run_counts, chis):
        """Interpolated per-request cost; fully vectorized.

        Inputs broadcast together; values outside the calibrated grid are
        clamped to the nearest edge, as the paper's model does when asked
        about uncalibrated operating points.
        """
        size_q = np.log(np.maximum(np.asarray(sizes, dtype=float), 1.0))
        run_q = np.log(np.maximum(np.asarray(run_counts, dtype=float), 1.0))
        chi_q = np.log1p(np.maximum(np.asarray(chis, dtype=float), 0.0))
        size_q, run_q, chi_q = np.broadcast_arrays(size_q, run_q, chi_q)

        si, sw = _bracket(self._size_coords, size_q)
        qi, qw = _bracket(self._run_coords, run_q)
        ci, cw = _bracket(self._chi_coords, chi_q)

        s_hi = np.minimum(si + 1, len(self.sizes) - 1)
        q_hi = np.minimum(qi + 1, len(self.run_counts) - 1)
        c_hi = np.minimum(ci + 1, len(self.contentions) - 1)

        def corner(a, b, c):
            return self.costs[a, b, c]

        c000 = corner(si, qi, ci)
        c001 = corner(si, qi, c_hi)
        c010 = corner(si, q_hi, ci)
        c011 = corner(si, q_hi, c_hi)
        c100 = corner(s_hi, qi, ci)
        c101 = corner(s_hi, qi, c_hi)
        c110 = corner(s_hi, q_hi, ci)
        c111 = corner(s_hi, q_hi, c_hi)

        c00 = c000 * (1 - cw) + c001 * cw
        c01 = c010 * (1 - cw) + c011 * cw
        c10 = c100 * (1 - cw) + c101 * cw
        c11 = c110 * (1 - cw) + c111 * cw

        c0 = c00 * (1 - qw) + c01 * qw
        c1 = c10 * (1 - qw) + c11 * qw

        return c0 * (1 - sw) + c1 * sw

    @classmethod
    def from_samples(cls, samples, chi_grid=None):
        """Build a table from scattered calibration samples.

        Args:
            samples: Iterable of ``(size, run_count, chi, cost)`` tuples.
                Sizes and run counts must come from a grid (each distinct
                value becomes an axis point); chi values may be scattered
                (closed-loop calibration cannot pin them exactly) and are
                resampled onto ``chi_grid`` by 1-D interpolation.
            chi_grid: Contention axis; defaults to (0, 0.5, 1, 2, 4, 8, 16).
        """
        samples = list(samples)
        if not samples:
            raise CalibrationError("no calibration samples provided")
        if chi_grid is None:
            chi_grid = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
        chi_grid = np.asarray(chi_grid, dtype=float)

        sizes = np.array(sorted({s for s, _, _, _ in samples}), dtype=float)
        runs = np.array(sorted({q for _, q, _, _ in samples}), dtype=float)
        costs = np.zeros((len(sizes), len(runs), len(chi_grid)))

        for i, size in enumerate(sizes):
            for j, run in enumerate(runs):
                points = sorted(
                    (chi, cost)
                    for s, q, chi, cost in samples
                    if s == size and q == run
                )
                if not points:
                    raise CalibrationError(
                        "missing calibration cell size=%g run=%g" % (size, run)
                    )
                chis = np.array([p[0] for p in points])
                vals = np.array([p[1] for p in points])
                # Collapse duplicate chi values by averaging.
                unique_chis, inverse = np.unique(chis, return_inverse=True)
                averaged = np.zeros(len(unique_chis))
                counts = np.zeros(len(unique_chis))
                np.add.at(averaged, inverse, vals)
                np.add.at(counts, inverse, 1)
                averaged /= counts
                costs[i, j, :] = np.interp(chi_grid, unique_chis, averaged)

        return cls(sizes, runs, chi_grid, costs)

    def to_dict(self):
        """JSON-serializable representation (for on-disk caching)."""
        return {
            "sizes": self.sizes.tolist(),
            "run_counts": self.run_counts.tolist(),
            "contentions": self.contentions.tolist(),
            "costs": self.costs.tolist(),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["sizes"], data["run_counts"], data["contentions"], data["costs"]
        )

    def slice_by_contention(self, size, run_count, chis=None):
        """One Figure-8-style curve: cost vs contention for fixed size/Q."""
        if chis is None:
            chis = self.contentions
        chis = np.asarray(chis, dtype=float)
        return chis, self.lookup(
            np.full_like(chis, float(size)),
            np.full_like(chis, float(run_count)),
            chis,
        )
