"""repro — workload-aware storage layout for database systems.

A faithful, from-scratch reproduction of Ozmen, Salem, Schindler and
Daniel, "Workload-Aware Storage Layout for Database Systems"
(SIGMOD 2010): a layout advisor that maps database objects onto storage
targets by solving a non-linear minimax utilization program over
Rome-style workload descriptions and calibrated black-box target cost
models, plus the full evaluation substrate (storage simulator, TPC-H/
TPC-C-shaped workload generators, baselines including the AutoAdmin
layout algorithm).

Quickstart::

    from repro import LayoutAdvisor, LayoutProblem, TargetSpec, ObjectWorkload
    from repro.models.analytic import analytic_disk_target_model

    targets = [
        TargetSpec("disk%d" % j, capacity=18 << 30,
                   model=analytic_disk_target_model("disk%d" % j))
        for j in range(4)
    ]
    workloads = [
        ObjectWorkload("lineitem", read_rate=800, run_count=64,
                       overlap={"orders": 0.9}),
        ObjectWorkload("orders", read_rate=300, run_count=64,
                       overlap={"lineitem": 0.9}),
    ]
    problem = LayoutProblem({"lineitem": 5 << 30, "orders": 1 << 30},
                            targets, workloads)
    result = LayoutAdvisor(problem).recommend()
    print(result.recommended.describe())
"""

from repro.core import (
    AdvisorResult,
    Layout,
    LayoutAdvisor,
    LayoutProblem,
    PinningConstraints,
    SolveResult,
    TargetSpec,
    initial_layout,
    regularize,
    solve,
)
from repro.workload import ObjectWorkload
from repro.models import TableCostModel, TargetModel

__version__ = "1.0.0"

__all__ = [
    "AdvisorResult",
    "Layout",
    "LayoutAdvisor",
    "LayoutProblem",
    "PinningConstraints",
    "SolveResult",
    "TargetSpec",
    "initial_layout",
    "regularize",
    "solve",
    "ObjectWorkload",
    "TableCostModel",
    "TargetModel",
    "__version__",
]
