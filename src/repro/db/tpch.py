"""TPC-H catalog and per-query I/O profiles.

The catalog mirrors the paper's scale-factor-5 TPC-H database: 9.4 GB in
20 objects — 8 tables, 11 indexes, and one temporary tablespace (paper
Figure 9).  Relative sizes follow standard TPC-H proportions.

The query profiles abstract PostgreSQL execution plans down to storage
behaviour: which objects each of the 22 benchmark queries scans
sequentially, which indexes it reads, how much temporary spill it does,
and which accesses proceed concurrently (hash-join build/probe pairs).
The profiles were written so the *workload-level* object statistics match
what the paper reports: LINEITEM and ORDERS are the two hottest objects
with sequential patterns and high overlap, I_L_ORDERKEY is the hottest
index, TEMP SPACE sees sequential bursts that rarely coincide with
ORDERS, and Q18 is the heaviest temp user (the query the paper notes
PostgreSQL misestimates by orders of magnitude).
"""

from repro import units
from repro.db.profiles import QueryProfile, phase, rand, seq
from repro.db.schema import Database, DatabaseObject, INDEX, TABLE, TEMP

_M = units.MIB

#: Scale-factor-5 object sizes (bytes).  Tables follow TPC-H row-count
#: proportions; index sizes are typical PostgreSQL b-tree footprints.
_TPCH_OBJECTS = (
    DatabaseObject("LINEITEM", TABLE, 4600 * _M),
    DatabaseObject("ORDERS", TABLE, 1050 * _M),
    DatabaseObject("PARTSUPP", TABLE, 720 * _M),
    DatabaseObject("PART", TABLE, 160 * _M),
    DatabaseObject("CUSTOMER", TABLE, 145 * _M),
    DatabaseObject("SUPPLIER", TABLE, 9 * _M),
    DatabaseObject("NATION", TABLE, 1 * _M),
    DatabaseObject("REGION", TABLE, 1 * _M),
    DatabaseObject("I_L_ORDERKEY", INDEX, 700 * _M),
    DatabaseObject("I_L_SUPPK_PARTK", INDEX, 650 * _M),
    DatabaseObject("I_L_SHIPDATE", INDEX, 450 * _M),
    DatabaseObject("ORDERS_PKEY", INDEX, 110 * _M),
    DatabaseObject("I_O_CUSTKEY", INDEX, 110 * _M),
    DatabaseObject("PARTSUPP_PKEY", INDEX, 75 * _M),
    DatabaseObject("PART_PKEY", INDEX, 11 * _M),
    DatabaseObject("CUSTOMER_PKEY", INDEX, 8 * _M),
    DatabaseObject("SUPPLIER_PKEY", INDEX, 1 * _M),
    DatabaseObject("NATION_PKEY", INDEX, 1 * _M),
    DatabaseObject("REGION_PKEY", INDEX, 1 * _M),
    DatabaseObject("TEMP SPACE", TEMP, 800 * _M),
)


def tpch_database(scale=1.0):
    """The TPC-H SF5-shaped catalog, optionally scaled down.

    Args:
        scale: Multiplier on every object size (1.0 = the paper's 9.4 GB
            database; experiments typically use 1/64 so runs complete in
            seconds).
    """
    db = Database("tpch", _TPCH_OBJECTS)
    if scale != 1.0:
        db = db.scaled(scale)
    return db


#: Per-query I/O profiles.  Accesses inside one ``phase(...)`` run
#: concurrently (hash join sides, bitmap-and index reads); phases run in
#: sequence (build temp, then consume it).
_PROFILES = {
    # Q1: full LINEITEM scan, tiny aggregation state.
    "Q1": QueryProfile("Q1", (
        phase(seq("LINEITEM", 1.0)),
    )),
    # Q2: min-cost supplier; PART/PARTSUPP/SUPPLIER joins with the
    # region/nation dimension tables, partsupp pkey re-probes.
    "Q2": QueryProfile("Q2", (
        phase(seq("PART", 0.5), seq("PARTSUPP", 0.6), seq("SUPPLIER", 1.0),
              seq("NATION", 1.0), seq("REGION", 1.0)),
        phase(rand("PARTSUPP_PKEY", fraction=0.3), rand("PARTSUPP", fraction=0.05)),
    )),
    # Q3: shipping priority; customer/orders/lineitem hash joins.
    "Q3": QueryProfile("Q3", (
        phase(seq("CUSTOMER", 1.0), seq("ORDERS", 1.0)),
        phase(seq("LINEITEM", 0.85), seq("TEMP SPACE", 0.15, kind="write")),
    )),
    # Q4: order priority check: orders scan + lineitem existence via the
    # orderkey index.
    "Q4": QueryProfile("Q4", (
        phase(seq("ORDERS", 1.0), seq("I_L_ORDERKEY", 0.8)),
    )),
    # Q5: local supplier volume: 6-way join.
    "Q5": QueryProfile("Q5", (
        phase(seq("CUSTOMER", 1.0), seq("SUPPLIER", 1.0), seq("NATION", 1.0),
              seq("REGION", 1.0)),
        phase(seq("ORDERS", 1.0), seq("LINEITEM", 0.9)),
    )),
    # Q6: forecasting revenue change: lineitem scan with tight filter.
    "Q6": QueryProfile("Q6", (
        phase(seq("LINEITEM", 1.0)),
    )),
    # Q7: volume shipping: lineitem/orders/customer/supplier joins with
    # a temp-side sort.
    "Q7": QueryProfile("Q7", (
        phase(seq("SUPPLIER", 1.0), seq("NATION", 1.0), seq("CUSTOMER", 1.0)),
        phase(seq("LINEITEM", 1.0), seq("ORDERS", 0.9)),
        phase(seq("TEMP SPACE", 0.2, kind="write")),
        phase(seq("TEMP SPACE", 0.2)),
    )),
    # Q8: national market share: widest join fan-in.
    "Q8": QueryProfile("Q8", (
        phase(seq("PART", 1.0), seq("REGION", 1.0), seq("NATION", 1.0)),
        phase(seq("LINEITEM", 0.8), seq("ORDERS", 1.0), seq("CUSTOMER", 1.0),
              seq("SUPPLIER", 1.0)),
    )),
    # Q9: product type profit.  Heaviest query; excluded from the OLAP
    # mixes as in the paper ("excessive run-time"), but profiled for
    # completeness.
    "Q9": QueryProfile("Q9", (
        phase(seq("PART", 1.0), seq("SUPPLIER", 1.0), seq("NATION", 1.0)),
        phase(seq("LINEITEM", 1.0), seq("ORDERS", 1.0), seq("PARTSUPP", 1.0),
              seq("TEMP SPACE", 1.0, kind="write")),
        phase(seq("TEMP SPACE", 1.0)),
    )),
    # Q10: returned item reporting.
    "Q10": QueryProfile("Q10", (
        phase(seq("CUSTOMER", 1.0), seq("ORDERS", 1.0), seq("NATION", 1.0)),
        phase(seq("LINEITEM", 0.75), seq("TEMP SPACE", 0.2, kind="write")),
        phase(seq("TEMP SPACE", 0.2)),
    )),
    # Q11: important stock identification (partsupp-only).
    "Q11": QueryProfile("Q11", (
        phase(seq("PARTSUPP", 1.0), seq("SUPPLIER", 1.0), seq("NATION", 1.0)),
        phase(seq("PARTSUPP", 1.0)),
    )),
    # Q12: shipping modes: orders joined to filtered lineitem.
    "Q12": QueryProfile("Q12", (
        phase(seq("ORDERS", 1.0), seq("LINEITEM", 1.0)),
    )),
    # Q13: customer distribution: left join spills groups to temp.
    "Q13": QueryProfile("Q13", (
        phase(seq("CUSTOMER", 1.0), seq("ORDERS", 1.0),
              seq("TEMP SPACE", 0.35, kind="write")),
        phase(seq("TEMP SPACE", 0.35)),
    )),
    # Q14: promotion effect.
    "Q14": QueryProfile("Q14", (
        phase(seq("PART", 1.0), seq("LINEITEM", 0.85)),
    )),
    # Q15: top supplier; the revenue view is evaluated twice.
    "Q15": QueryProfile("Q15", (
        phase(seq("LINEITEM", 1.0)),
        phase(seq("LINEITEM", 1.0), seq("SUPPLIER", 1.0)),
    )),
    # Q16: parts/supplier relationship.
    "Q16": QueryProfile("Q16", (
        phase(seq("PARTSUPP", 1.0), seq("PART", 1.0), seq("SUPPLIER", 1.0)),
    )),
    # Q17: small-quantity-order revenue: per-part average over lineitem
    # via the (suppkey, partkey) index.
    "Q17": QueryProfile("Q17", (
        phase(seq("PART", 1.0)),
        phase(seq("I_L_SUPPK_PARTK", 1.0), rand("LINEITEM", fraction=0.08)),
    )),
    # Q18: large volume customer: the big group-by subquery on lineitem
    # spills heavily to temp (the paper's cardinality-misestimate
    # example), then joins orders/customer/lineitem.
    "Q18": QueryProfile("Q18", (
        phase(seq("LINEITEM", 1.0), seq("TEMP SPACE", 0.9, kind="write")),
        phase(seq("TEMP SPACE", 0.9), seq("ORDERS", 1.0), seq("CUSTOMER", 1.0)),
        phase(seq("I_L_ORDERKEY", 0.5), rand("LINEITEM", fraction=0.05)),
    )),
    # Q19: discounted revenue: lineitem/part with OR-of-ANDs filter.
    "Q19": QueryProfile("Q19", (
        phase(seq("LINEITEM", 1.0), seq("PART", 1.0)),
    )),
    # Q20: potential part promotion: partsupp filtered through the
    # lineitem (suppkey, partkey) index aggregate.
    "Q20": QueryProfile("Q20", (
        phase(seq("PART", 1.0), seq("PARTSUPP", 1.0)),
        phase(seq("I_L_SUPPK_PARTK", 1.0), seq("SUPPLIER", 1.0),
              seq("NATION", 1.0)),
    )),
    # Q21: suppliers who kept orders waiting: lineitem referenced three
    # times (self joins via the orderkey index).
    "Q21": QueryProfile("Q21", (
        phase(seq("SUPPLIER", 1.0), seq("NATION", 1.0), seq("ORDERS", 1.0)),
        phase(seq("LINEITEM", 1.0), seq("I_L_ORDERKEY", 1.0)),
        phase(seq("I_L_ORDERKEY", 1.0), rand("LINEITEM", fraction=0.06)),
    )),
    # Q22: global sales opportunity: customer aggregated twice, orders
    # anti-joined via the customer-key index.
    "Q22": QueryProfile("Q22", (
        phase(seq("CUSTOMER", 1.0)),
        phase(seq("CUSTOMER", 1.0), seq("I_O_CUSTKEY", 1.0),
              rand("ORDERS", fraction=0.05)),
    )),
}

#: All 22 query names, in benchmark order.
TPCH_QUERY_NAMES = tuple("Q%d" % n for n in range(1, 23))


def tpch_query_profile(name):
    """The I/O profile for one TPC-H query (``"Q1"`` .. ``"Q22"``)."""
    return _PROFILES[name]
