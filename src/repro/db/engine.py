"""Workload execution engine.

Replays a SQL workload — modelled as query/transaction I/O profiles —
under a given layout on the storage simulator, and reports the metrics
the paper reports: total elapsed (simulated wall-clock) time for OLAP
workloads, New-Order transactions per minute for OLTP, and measured
per-target utilizations.

This is the substitution for the paper's PostgreSQL testbed; see
DESIGN.md for the substitution argument.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import units
from repro.db.profiles import RAND, SEQ
from repro.db.schema import LOG
from repro.storage.engine import SimulationEngine
from repro.storage.mapping import PlacementMap
from repro.storage.streams import RandomStream, ScanStream, SimContext
from repro.storage.target import StorageTarget


@dataclass
class WorkloadResult:
    """Measured outcome of one workload run under one layout.

    Attributes:
        name: Workload name.
        elapsed_s: Simulated wall-clock seconds until the workload
            finished (the paper's primary OLAP metric).
        tpm: New-Order transactions per minute (None for pure OLAP).
        completed_queries: Number of OLAP queries that ran.
        completed_transactions: Number of OLTP transactions that ran.
        utilizations: Measured per-target utilization (busy fraction).
        query_times: Per-query elapsed seconds, in completion order.
        trace: Completion records, when tracing was requested.
    """

    name: str
    elapsed_s: float
    tpm: Optional[float] = None
    completed_queries: int = 0
    completed_transactions: int = 0
    utilizations: Dict[str, float] = field(default_factory=dict)
    query_times: List[float] = field(default_factory=list)
    trace: Optional[list] = None


class _QueryRun:
    """Executes one query profile: phases in sequence, accesses within a
    phase concurrently."""

    def __init__(self, ctx, database, profile, rng, on_done,
                 log_cursors, page=units.DEFAULT_PAGE_SIZE):
        self.ctx = ctx
        self.database = database
        self.profile = profile
        self.rng = rng
        self.on_done = on_done
        self.log_cursors = log_cursors
        self.page = int(page)
        self.start_time = None
        self._phase_index = 0
        self._streams_left = 0

    def start(self):
        self.start_time = self.ctx.engine.now
        self._start_phase()
        return self

    def _start_phase(self):
        phase = self.profile.phases[self._phase_index]
        streams = []
        for access in phase.accesses:
            stream = self._make_stream(access)
            if stream is not None:
                streams.append(stream)
        self._streams_left = len(streams)
        if not streams:
            self._phase_done()
            return
        for stream in streams:
            stream.start()

    def _make_stream(self, access):
        size = self.ctx.placement.object_size(access.obj)
        n_pages_in_object = max(1, size // self.page)
        if access.mode == SEQ:
            if access.pages > 0:
                length_pages = access.pages
            else:
                length_pages = int(round(min(access.fraction, 1.0)
                                         * n_pages_in_object))
            length_pages = max(1, min(length_pages, n_pages_in_object))
            start = 0
            if self.database[access.obj].kind == LOG or access.kind == "write":
                # Appends (log commits, temp spills) continue from the
                # object's current write frontier rather than offset 0.
                cursor = self.log_cursors.get(access.obj, 0)
                if cursor + length_pages > n_pages_in_object:
                    cursor = 0
                start = cursor * self.page
                self.log_cursors[access.obj] = cursor + length_pages
            return ScanStream(
                self.ctx, access.obj, length=length_pages * self.page,
                start=start, page=self.page, window=access.window,
                kind=access.kind, on_done=self._stream_done,
            )
        n_requests = access.pages
        if n_requests <= 0:
            n_requests = max(1, int(round(access.fraction * n_pages_in_object)))
        return RandomStream(
            self.ctx, access.obj, n_requests=n_requests, rng=self.rng,
            page=self.page, window=access.window, kind=access.kind,
            on_done=self._stream_done,
        )

    def _stream_done(self, _stream):
        self._streams_left -= 1
        if self._streams_left == 0:
            self._phase_done()

    def _phase_done(self):
        self._phase_index += 1
        if self._phase_index < len(self.profile.phases):
            self._start_phase()
        else:
            self.on_done(self)


class OlapDriver:
    """Runs a sequence of queries at a fixed concurrency level.

    Whenever a query finishes, the next one in the sequence starts, so
    ``concurrency`` queries are active at all times (paper §6.1's
    description of OLAP8-63).
    """

    def __init__(self, ctx, database, profiles, concurrency=1, seed=0,
                 page=units.DEFAULT_PAGE_SIZE, on_all_done=None):
        self.ctx = ctx
        self.database = database
        self.profiles = list(profiles)
        self.concurrency = int(concurrency)
        self.page = page
        self.on_all_done = on_all_done
        self.rng = np.random.default_rng(seed)
        self.log_cursors = {}
        self.completed = 0
        self.query_times = []
        self._next_index = 0
        self.finished = False

    def start(self):
        for _ in range(min(self.concurrency, len(self.profiles))):
            self._launch_next()
        return self

    def _launch_next(self):
        profile = self.profiles[self._next_index]
        self._next_index += 1
        _QueryRun(
            self.ctx, self.database, profile,
            rng=np.random.default_rng(self.rng.integers(0, 2**31)),
            on_done=self._query_done, log_cursors=self.log_cursors,
            page=self.page,
        ).start()

    def _query_done(self, run):
        self.completed += 1
        self.query_times.append(self.ctx.engine.now - run.start_time)
        if self._next_index < len(self.profiles):
            self._launch_next()
        elif self.completed == len(self.profiles):
            self.finished = True
            if self.on_all_done is not None:
                self.on_all_done(self)


class OltpDriver:
    """Simulated OLTP terminals with no think or keying time.

    Each terminal runs transactions back to back.  ``stop()`` lets the
    consolidation scenario end the OLTP side when the OLAP side
    finishes, as the paper does; transaction completion timestamps allow
    excluding a warm-up prefix from the throughput calculation.
    """

    def __init__(self, ctx, database, sample_profile, terminals=9, seed=0,
                 page=units.DEFAULT_PAGE_SIZE, max_transactions=None):
        self.ctx = ctx
        self.database = database
        self.sample_profile = sample_profile
        self.terminals = int(terminals)
        self.page = page
        self.max_transactions = max_transactions
        self.rng = np.random.default_rng(seed)
        self.log_cursors = {}
        self.completions = []          # (finish_time, profile_name)
        self._stopped = False
        self._started = 0

    def start(self):
        for _ in range(self.terminals):
            self._launch()
        return self

    def _launch(self):
        if self._stopped:
            return
        if (self.max_transactions is not None
                and self._started >= self.max_transactions):
            return
        self._started += 1
        profile = self.sample_profile(self.rng)
        _QueryRun(
            self.ctx, self.database, profile,
            rng=np.random.default_rng(self.rng.integers(0, 2**31)),
            on_done=self._transaction_done, log_cursors=self.log_cursors,
            page=self.page,
        ).start()

    def _transaction_done(self, run):
        self.completions.append((self.ctx.engine.now, run.profile.name))
        self._launch()

    def stop(self):
        self._stopped = True

    def throughput_tpm(self, kind="NewOrder", warmup_fraction=0.1,
                       end_time=None):
        """Transactions per minute of one kind, excluding warm-up."""
        if not self.completions:
            return 0.0
        if end_time is None:
            end_time = self.completions[-1][0]
        warmup = end_time * warmup_fraction
        counted = sum(
            1 for t, name in self.completions
            if name == kind and t >= warmup
        )
        window = max(end_time - warmup, 1e-9)
        return 60.0 * counted / window


def _build_run(database, fractions, devices,
               stripe_size=units.DEFAULT_STRIPE_SIZE, collect_trace=False):
    """Assemble engine, targets, placement, and context for one run."""
    engine = SimulationEngine()
    trace = [] if collect_trace else None
    targets = [StorageTarget(d, engine=engine, trace=trace) for d in devices]
    placement = PlacementMap(
        database.sizes(), fractions, [t.capacity for t in targets],
        stripe_size=stripe_size,
    )
    ctx = SimContext(engine, placement, targets)
    return engine, targets, ctx, trace


def _result(name, engine, targets, trace, driver=None, oltp=None,
            warmup_fraction=0.1):
    elapsed = engine.now
    utilizations = {t.name: t.utilization(elapsed) for t in targets}
    result = WorkloadResult(
        name=name,
        elapsed_s=elapsed,
        utilizations=utilizations,
        trace=trace,
    )
    if driver is not None:
        result.completed_queries = driver.completed
        result.query_times = driver.query_times
    if oltp is not None:
        result.completed_transactions = len(oltp.completions)
        result.tpm = oltp.throughput_tpm(
            warmup_fraction=warmup_fraction, end_time=elapsed
        )
    return result


def run_olap(database, profiles, fractions, devices, concurrency=1, seed=0,
             stripe_size=units.DEFAULT_STRIPE_SIZE,
             page=units.DEFAULT_PAGE_SIZE, collect_trace=False, name="olap"):
    """Run an OLAP query sequence under a layout; return the result.

    Args:
        database: The :class:`~repro.db.schema.Database` catalog.
        profiles: Query profiles in execution order.
        fractions: Mapping object name → per-target fractions (e.g.
            ``Layout.fractions_by_name()``).
        devices: Fresh device instances, one per target.
        concurrency: Simultaneously active queries.
        collect_trace: Record completion records (for workload fitting).
    """
    engine, targets, ctx, trace = _build_run(
        database, fractions, devices, stripe_size, collect_trace
    )
    driver = OlapDriver(ctx, database, profiles, concurrency=concurrency,
                        seed=seed, page=page)
    driver.start()
    engine.run()
    return _result(name, engine, targets, trace, driver=driver)


def run_oltp(database, sample_profile, fractions, devices, terminals=9,
             n_transactions=600, seed=0,
             stripe_size=units.DEFAULT_STRIPE_SIZE,
             page=units.DEFAULT_PAGE_SIZE, collect_trace=False, name="oltp"):
    """Run a fixed number of OLTP transactions under a layout."""
    engine, targets, ctx, trace = _build_run(
        database, fractions, devices, stripe_size, collect_trace
    )
    oltp = OltpDriver(ctx, database, sample_profile, terminals=terminals,
                      seed=seed, page=page, max_transactions=n_transactions)
    oltp.start()
    engine.run()
    return _result(name, engine, targets, trace, oltp=oltp)


def run_consolidation(database, olap_profiles, sample_profile, fractions,
                      devices, olap_concurrency=1, terminals=9, seed=0,
                      stripe_size=units.DEFAULT_STRIPE_SIZE,
                      page=units.DEFAULT_PAGE_SIZE, collect_trace=False,
                      name="consolidation", warmup_fraction=0.1):
    """Run OLAP and OLTP concurrently (paper §6.3).

    The OLTP driver runs until the OLAP side finishes, mirroring the
    paper's procedure; reported tpm excludes the warm-up prefix.
    """
    engine, targets, ctx, trace = _build_run(
        database, fractions, devices, stripe_size, collect_trace
    )
    oltp = OltpDriver(ctx, database, sample_profile, terminals=terminals,
                      seed=seed + 1, page=page)

    driver = OlapDriver(
        ctx, database, olap_profiles, concurrency=olap_concurrency,
        seed=seed, page=page, on_all_done=lambda _d: oltp.stop(),
    )
    driver.start()
    oltp.start()
    engine.run()
    return _result(name, engine, targets, trace, driver=driver, oltp=oltp,
                   warmup_fraction=warmup_fraction)
