"""Query I/O profile types.

A :class:`QueryProfile` abstracts a query execution plan down to the
level the storage system sees: a sequence of *phases*, each a set of
concurrent object accesses (sequential scans or random probes) that must
all finish before the next phase starts.  This is the substitution for
running PostgreSQL: the per-query profiles in :mod:`repro.db.tpch` and
:mod:`repro.db.tpcc` encode which objects each query touches, how much,
and with what access pattern, so layout changes move simulated elapsed
times the way they moved wall-clock times in the paper.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

SEQ = "seq"
RAND = "rand"


@dataclass(frozen=True)
class AccessSpec:
    """One object access within a query phase.

    Attributes:
        obj: Object name in the database catalog.
        mode: ``"seq"`` (sequential scan; OS readahead keeps a window of
            requests in flight) or ``"rand"`` (random page probes).
        fraction: For sequential access, the fraction of the object
            scanned (1.0 = full scan; values above 1.0 mean repeated
            scans and are split into full passes).  For random access
            with ``pages == 0``, the number of probes is
            ``fraction · object_size / page_size`` — probe volume that
            scales with the database, which is what OLAP index probes do.
        pages: An *absolute* number of pages (used by OLTP transactions,
            whose per-transaction I/O does not grow with table size).
            For sequential access an absolute page count reads/writes
            that many consecutive pages (e.g. a log commit record).
            When positive it takes precedence over ``fraction``.
        kind: ``"read"`` or ``"write"``.
        window: Requests kept in flight by this access's stream.
    """

    obj: str
    mode: str = SEQ
    fraction: float = 1.0
    pages: int = 0
    kind: str = "read"
    window: int = 8

    def __post_init__(self):
        if self.mode not in (SEQ, RAND):
            raise ValueError("unknown access mode %r" % self.mode)
        if self.pages <= 0 and self.fraction <= 0:
            raise ValueError(
                "access needs a positive page count or fraction"
            )


@dataclass(frozen=True)
class Phase:
    """Concurrent accesses; the phase ends when all of them finish."""

    accesses: Tuple[AccessSpec, ...]

    def __post_init__(self):
        if not self.accesses:
            raise ValueError("a phase needs at least one access")


@dataclass(frozen=True)
class QueryProfile:
    """A query (or transaction) as a sequence of I/O phases."""

    name: str
    phases: Tuple[Phase, ...]

    def __post_init__(self):
        if not self.phases:
            raise ValueError("query %s has no phases" % self.name)

    @property
    def objects(self):
        """All object names the profile touches."""
        seen = []
        for phase in self.phases:
            for access in phase.accesses:
                if access.obj not in seen:
                    seen.append(access.obj)
        return seen

    def renamed(self, rename):
        """Profile with object names remapped via ``rename`` mapping."""
        return QueryProfile(
            self.name,
            tuple(
                Phase(tuple(
                    AccessSpec(
                        obj=rename.get(a.obj, a.obj),
                        mode=a.mode,
                        fraction=a.fraction,
                        pages=a.pages,
                        kind=a.kind,
                        window=a.window,
                    )
                    for a in phase.accesses
                ))
                for phase in self.phases
            ),
        )


def phase(*accesses):
    """Shorthand constructor used by the profile tables."""
    return Phase(tuple(accesses))


def seq(obj, fraction=1.0, pages=0, kind="read", window=8):
    """Shorthand for a sequential access spec."""
    return AccessSpec(obj=obj, mode=SEQ, fraction=fraction, pages=pages,
                      kind=kind, window=window)


def rand(obj, fraction=0.0, pages=0, kind="read", window=2):
    """Shorthand for a random access spec (fractional or absolute)."""
    return AccessSpec(obj=obj, mode=RAND, fraction=fraction, pages=pages,
                      kind=kind, window=window)
