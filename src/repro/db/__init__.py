"""Database workload substrate.

The paper evaluates the advisor with PostgreSQL running TPC-H and TPC-C.
This subpackage provides the simulated equivalent: object catalogs with
paper-faithful relative sizes, per-query I/O profiles describing which
objects each TPC-H query scans or probes (and how much), TPC-C
transaction profiles, the four SQL workloads of the paper's Figure 10,
and an execution engine that replays a workload under a given layout on
the storage simulator and reports elapsed time / tpmC.
"""

from repro.db.schema import Database, DatabaseObject
from repro.db.tpch import tpch_database, tpch_query_profile, TPCH_QUERY_NAMES
from repro.db.tpcc import tpcc_database, new_order_profile
from repro.db.workloads import (
    olap_workload,
    oltp_workload,
    OLAP1_21,
    OLAP1_63,
    OLAP8_63,
    OLTP,
)
from repro.db.engine import WorkloadResult, run_olap, run_oltp, run_consolidation
from repro.db.cache import CachedContext, LruPageCache

__all__ = [
    "Database",
    "DatabaseObject",
    "tpch_database",
    "tpch_query_profile",
    "TPCH_QUERY_NAMES",
    "tpcc_database",
    "new_order_profile",
    "olap_workload",
    "oltp_workload",
    "OLAP1_21",
    "OLAP1_63",
    "OLAP8_63",
    "OLTP",
    "WorkloadResult",
    "run_olap",
    "run_oltp",
    "run_consolidation",
    "CachedContext",
    "LruPageCache",
]
