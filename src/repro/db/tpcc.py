"""TPC-C catalog and transaction I/O profiles.

The catalog mirrors the paper's scale-factor-90 TPC-C database: 9.1 GB
in 20 objects — 9 tables, 10 indexes, and a transaction log (paper
Figure 9).  The OLTP workload is driven by simulated terminals with no
think or keying time executing New-Order-dominated transactions, as in
the paper; throughput is reported in New-Order transactions per minute
(tpmC).

Object names follow the paper's Figure 16 (STOCK, PK_STOCK, XactionLOG,
I_CUSTOMER, I_ORDERS, PK_CUSTOMER, PK_ORDER_LINE, ...).
"""

import numpy as np

from repro import units
from repro.db.profiles import QueryProfile, phase, rand, seq
from repro.db.schema import Database, DatabaseObject, INDEX, LOG, TABLE

_M = units.MIB

#: Scale-factor-90 object sizes (bytes), standard TPC-C proportions.
_TPCC_OBJECTS = (
    DatabaseObject("STOCK", TABLE, 2900 * _M),
    DatabaseObject("ORDER_LINE", TABLE, 1900 * _M),
    DatabaseObject("CUSTOMER", TABLE, 1550 * _M),
    DatabaseObject("HISTORY", TABLE, 210 * _M),
    DatabaseObject("OORDER", TABLE, 140 * _M),
    DatabaseObject("ITEM", TABLE, 75 * _M),
    DatabaseObject("NEW_ORDER", TABLE, 40 * _M),
    DatabaseObject("DISTRICT", TABLE, 2 * _M),
    DatabaseObject("WAREHOUSE", TABLE, 1 * _M),
    DatabaseObject("PK_ORDER_LINE", INDEX, 450 * _M),
    DatabaseObject("PK_STOCK", INDEX, 280 * _M),
    DatabaseObject("PK_CUSTOMER", INDEX, 120 * _M),
    DatabaseObject("I_CUSTOMER", INDEX, 90 * _M),
    DatabaseObject("PK_OORDER", INDEX, 45 * _M),
    DatabaseObject("I_ORDERS", INDEX, 45 * _M),
    DatabaseObject("PK_NEW_ORDER", INDEX, 8 * _M),
    DatabaseObject("PK_ITEM", INDEX, 4 * _M),
    DatabaseObject("PK_DISTRICT", INDEX, 1 * _M),
    DatabaseObject("PK_WAREHOUSE", INDEX, 1 * _M),
    DatabaseObject("XactionLOG", LOG, 1200 * _M),
)


def tpcc_database(scale=1.0):
    """The TPC-C SF90-shaped catalog, optionally scaled down."""
    db = Database("tpcc", _TPCC_OBJECTS)
    if scale != 1.0:
        db = db.scaled(scale)
    return db


def new_order_profile():
    """I/O profile of one New-Order transaction.

    Per the TPC-C specification a New-Order touches the warehouse,
    district, and customer rows, ~10 order lines each requiring an item
    lookup (ITEM is small and cached — only occasional misses reach
    storage) and a stock read-modify-write, inserts into OORDER,
    NEW_ORDER, and ORDER_LINE, and commits with a sequential log write.
    All page numbers are absolute (per-transaction I/O does not scale
    with table size) and assume a warm buffer pool: hot interior b-tree
    pages and the tiny tables are cached, leaf/heap pages mostly miss.
    """
    return QueryProfile("NewOrder", (
        # Reads: customer lookup, stock reads for ~10 lines, index leaves.
        phase(
            rand("PK_CUSTOMER", pages=1),
            rand("CUSTOMER", pages=1),
            rand("PK_STOCK", pages=2, window=2),
            rand("STOCK", pages=8, window=4),
        ),
        # Writes: stock updates, order-line/order inserts, log commit.
        phase(
            rand("STOCK", pages=6, kind="write", window=4),
            rand("ORDER_LINE", pages=3, kind="write", window=2),
            rand("PK_ORDER_LINE", pages=1, kind="write"),
            rand("OORDER", pages=1, kind="write"),
            rand("NEW_ORDER", pages=1, kind="write"),
            seq("XactionLOG", pages=2, kind="write", window=1),
        ),
    ))


def payment_profile():
    """I/O profile of one Payment transaction (secondary mix member)."""
    return QueryProfile("Payment", (
        phase(
            rand("I_CUSTOMER", pages=1),
            rand("CUSTOMER", pages=1),
        ),
        phase(
            rand("CUSTOMER", pages=1, kind="write"),
            rand("HISTORY", pages=1, kind="write"),
            seq("XactionLOG", pages=1, kind="write", window=1),
        ),
    ))


def order_status_profile():
    """I/O profile of one Order-Status transaction (read only)."""
    return QueryProfile("OrderStatus", (
        phase(
            rand("I_CUSTOMER", pages=1),
            rand("CUSTOMER", pages=1),
            rand("PK_OORDER", pages=1),
            rand("I_ORDERS", pages=1),
        ),
        phase(
            rand("PK_ORDER_LINE", pages=1),
            rand("ORDER_LINE", pages=2, window=2),
        ),
    ))


#: The transaction mix executed by each simulated terminal.  New-Order
#: dominates (it is also the only transaction counted for tpmC, per the
#: TPC-C convention the paper follows).
TRANSACTION_MIX = (
    (new_order_profile(), 0.6),
    (payment_profile(), 0.3),
    (order_status_profile(), 0.1),
)


def sample_transaction(rng):
    """Draw a transaction profile from the mix."""
    profiles = [p for p, _ in TRANSACTION_MIX]
    weights = np.array([w for _, w in TRANSACTION_MIX])
    index = rng.choice(len(profiles), p=weights / weights.sum())
    return profiles[int(index)]
