"""Buffer-pool model: an LRU page cache in front of the storage layer.

The paper's testbed ran PostgreSQL with a 2 GB shared buffer against a
9.4 GB database, so roughly a fifth of the pages — and essentially all
hot index interior pages and dimension tables — never reached storage.
The query profiles in :mod:`repro.db.tpch` bake the *steady-state* miss
behaviour in (that is why small tables carry small fractions), so the
execution engine does not need a cache for the paper reproductions.

This module provides the cache anyway, as an opt-in substrate feature
for what-if studies: wrap a :class:`~repro.storage.streams.SimContext`
in a :class:`CachedContext` and reads of cached pages complete after a
configurable hit latency without generating device I/O.  Writes follow
a write-through policy (they both update the cache and reach storage),
which matches PostgreSQL-with-fsync behaviour closely enough for layout
studies.
"""

from collections import OrderedDict

from repro import units


class LruPageCache:
    """A byte-capacity LRU cache of (object, page) entries."""

    def __init__(self, capacity_bytes, page=units.DEFAULT_PAGE_SIZE):
        self.capacity_pages = max(0, int(capacity_bytes) // int(page))
        self.page = int(page)
        self._pages = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._pages)

    def lookup(self, obj, offset):
        """True (and refresh recency) when the page is cached."""
        key = (obj, offset // self.page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, obj, offset):
        """Cache a page, evicting the least recently used if full."""
        if self.capacity_pages == 0:
            return
        key = (obj, offset // self.page)
        self._pages[key] = True
        self._pages.move_to_end(key)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)

    def invalidate(self, obj=None):
        """Drop all pages (or one object's pages)."""
        if obj is None:
            self._pages.clear()
        else:
            self._pages = OrderedDict(
                (key, value) for key, value in self._pages.items()
                if key[0] != obj
            )

    @property
    def hit_ratio(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedContext:
    """A drop-in :class:`SimContext` wrapper with a buffer pool.

    Reads that hit the cache complete after ``hit_latency_s`` without
    touching a device; misses go to storage and populate the cache on
    completion.  Writes are write-through: they update the cache and
    still reach the device.
    """

    def __init__(self, ctx, capacity_bytes, hit_latency_s=20 * units.US,
                 page=units.DEFAULT_PAGE_SIZE):
        self._ctx = ctx
        self.cache = LruPageCache(capacity_bytes, page=page)
        self.hit_latency_s = float(hit_latency_s)

    @property
    def engine(self):
        return self._ctx.engine

    @property
    def placement(self):
        return self._ctx.placement

    @property
    def targets(self):
        return self._ctx.targets

    def submit(self, obj, offset, size, kind, stream_id, on_complete=None):
        if kind == "read" and self.cache.lookup(obj, offset):
            # Serve from the buffer pool: no device request at all.
            from repro.storage.request import IORequest

            request = IORequest(
                stream_id=stream_id, kind=kind, lba=-1, size=size,
                obj=obj, logical_offset=offset, on_complete=on_complete,
            )
            request.submit_time = self.engine.now

            def finish():
                request.start_time = request.submit_time
                request.finish_time = self.engine.now
                if on_complete is not None:
                    on_complete(request)

            self.engine.schedule(self.hit_latency_s, finish)
            return request

        if kind == "write":
            self.cache.insert(obj, offset)

            def chained(request):
                if on_complete is not None:
                    on_complete(request)

            return self._ctx.submit(obj, offset, size, kind, stream_id,
                                    on_complete=chained)

        def populate_then(request):
            self.cache.insert(obj, offset)
            if on_complete is not None:
                on_complete(request)

        return self._ctx.submit(obj, offset, size, kind, stream_id,
                                on_complete=populate_then)
