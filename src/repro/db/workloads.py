"""The four SQL workloads of the paper's Figure 10.

* **OLAP1-21** — 21 of the 22 TPC-H queries (Q9 excluded for excessive
  run time), executed sequentially in a randomly selected order.
* **OLAP1-63** — each of the 21 queries three times, randomly permuted,
  concurrency one.
* **OLAP8-63** — the same 63-query mix at a concurrency level of eight.
* **OLTP** — nine simulated TPC-C terminals with no think/keying time.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.db.tpch import TPCH_QUERY_NAMES, tpch_query_profile


@dataclass(frozen=True)
class OlapWorkload:
    """An OLAP query mix: a query-name sequence plus a concurrency level."""

    name: str
    queries: Tuple[str, ...]
    concurrency: int

    def profiles(self, rename=None):
        """Resolved query profiles, optionally renamed (consolidation)."""
        profiles = [tpch_query_profile(q) for q in self.queries]
        if rename:
            profiles = [p.renamed(rename) for p in profiles]
        return profiles


@dataclass(frozen=True)
class OltpWorkload:
    """A TPC-C terminal workload."""

    name: str
    terminals: int


#: Queries eligible for the OLAP mixes: all but Q9, as in the paper.
OLAP_QUERY_POOL = tuple(q for q in TPCH_QUERY_NAMES if q != "Q9")


def olap_workload(name, repetitions=1, concurrency=1, seed=42):
    """Build an OLAP mix: the 21-query pool repeated and permuted.

    The permutation is seeded so every run of the library sees the same
    "randomly selected order" the paper fixes per workload.
    """
    rng = np.random.default_rng(seed)
    mix = list(OLAP_QUERY_POOL) * repetitions
    order = rng.permutation(len(mix))
    return OlapWorkload(
        name=name,
        queries=tuple(mix[i] for i in order),
        concurrency=concurrency,
    )


def oltp_workload(name="OLTP", terminals=9):
    """The paper's OLTP workload: nine terminals, no think time."""
    return OltpWorkload(name=name, terminals=terminals)


OLAP1_21 = olap_workload("OLAP1-21", repetitions=1, concurrency=1, seed=21)
OLAP1_63 = olap_workload("OLAP1-63", repetitions=3, concurrency=1, seed=63)
OLAP8_63 = olap_workload("OLAP8-63", repetitions=3, concurrency=8, seed=63)
OLTP = oltp_workload()
