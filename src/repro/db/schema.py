"""Database object catalogs.

A :class:`Database` is a named set of :class:`DatabaseObject` — tables,
indexes, temporary tablespaces, and logs — with sizes.  The advisor and
the simulator both consume catalogs; per-database builders live in
:mod:`repro.db.tpch` and :mod:`repro.db.tpcc`.
"""

from dataclasses import dataclass
from typing import Tuple

from repro import units

TABLE = "table"
INDEX = "index"
TEMP = "temp"
LOG = "log"

KINDS = (TABLE, INDEX, TEMP, LOG)


@dataclass(frozen=True)
class DatabaseObject:
    """One layout-able database object.

    Attributes:
        name: Unique object name within its database.
        kind: One of ``table``, ``index``, ``temp``, ``log`` — used by
            the heuristic baselines that isolate object categories.
        size: Size in bytes.
    """

    name: str
    kind: str
    size: int

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown object kind %r" % self.kind)
        if self.size <= 0:
            raise ValueError("object %s must have positive size" % self.name)

    def scaled(self, factor, minimum=units.DEFAULT_STRIPE_SIZE):
        """Return a copy with size scaled down (never below one stripe)."""
        return DatabaseObject(self.name, self.kind, max(int(minimum), int(self.size * factor)))


class Database:
    """A named collection of database objects."""

    def __init__(self, name, objects):
        self.name = name
        self.objects = tuple(objects)
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise ValueError("duplicate object names in database %s" % name)
        self._by_name = {o.name: o for o in self.objects}

    def __getitem__(self, name):
        return self._by_name[name]

    def __contains__(self, name):
        return name in self._by_name

    def __len__(self):
        return len(self.objects)

    @property
    def object_names(self):
        return [o.name for o in self.objects]

    @property
    def total_size(self):
        return sum(o.size for o in self.objects)

    def sizes(self):
        """Mapping of object name to size (layout-problem input)."""
        return {o.name: o.size for o in self.objects}

    def of_kind(self, kind):
        """Object names of one kind, in catalog order."""
        return [o.name for o in self.objects if o.kind == kind]

    def scaled(self, factor, minimum=units.DEFAULT_STRIPE_SIZE):
        """A proportionally smaller copy of the database.

        The simulator runs scaled-down databases so experiments complete
        in seconds; layout decisions depend on relative sizes and rates,
        which scaling preserves.
        """
        return Database(
            self.name, [o.scaled(factor, minimum) for o in self.objects]
        )

    def merged_with(self, other, prefix_self="", prefix_other=""):
        """Union of two databases (the paper's consolidation scenario).

        Name prefixes disambiguate collisions (e.g. both TPC-H and TPC-C
        have a CUSTOMER table).
        """
        renamed_self = [
            DatabaseObject(prefix_self + o.name, o.kind, o.size)
            for o in self.objects
        ]
        renamed_other = [
            DatabaseObject(prefix_other + o.name, o.kind, o.size)
            for o in other.objects
        ]
        return Database(
            "%s+%s" % (self.name, other.name), renamed_self + renamed_other
        )
