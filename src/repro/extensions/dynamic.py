"""Dynamic placement guidance (the paper's FlexVol discussion, §8).

"Instead of statically assigning disks and fixed capacity to volumes
during an initial configuration step, capacity is assigned dynamically
as the system runs ... the layout techniques described in this paper
could be used to guide the storage system's dynamic allocation
decisions as FlexVols grow."

:class:`DynamicPlacer` keeps a live layout for a growing set of
objects.  When an object grows (or a new object appears), the placer
decides where the *new* capacity goes by evaluating the advisor's
objective over candidate targets — without relocating existing data,
which is the operational constraint FlexVol-style allocation lives
under.  Periodically calling :meth:`reoptimize` runs the full advisor
to see how far the incrementally grown layout has drifted from the
optimum (the relocation payoff).
"""

import numpy as np

from repro.core.advisor import LayoutAdvisor
from repro.core.problem import LayoutProblem
from repro.errors import CapacityError
from repro.workload.spec import ObjectWorkload


class DynamicPlacer:
    """Incremental, no-relocation layout maintenance.

    Args:
        targets: Sequence of :class:`~repro.core.problem.TargetSpec`.
        stripe_size: Granularity of placement decisions; each growth
            increment is placed wholly on one target.
    """

    def __init__(self, targets, stripe_size=None):
        self.targets = list(targets)
        self.capacities = np.array([t.capacity for t in self.targets],
                                   dtype=float)
        self.models = [t.model for t in self.targets]
        self.stripe_size = stripe_size
        self._sizes = {}           # object -> total bytes
        self._placed = {}          # object -> per-target bytes array
        self._workloads = {}       # object -> ObjectWorkload

    @property
    def object_names(self):
        return list(self._sizes)

    def set_workload(self, workload):
        """Install or update an object's workload description."""
        self._workloads[workload.name] = workload
        if workload.name not in self._sizes:
            self._sizes[workload.name] = 0
            self._placed[workload.name] = np.zeros(len(self.targets))

    def _used(self):
        used = np.zeros(len(self.targets))
        for placed in self._placed.values():
            used += placed
        return used

    def _problem(self):
        sizes = {
            name: max(1, int(size))
            for name, size in self._sizes.items()
            if size > 0
        }
        workloads = [
            self._workloads.get(name, ObjectWorkload(name))
            for name in sizes
        ]
        kwargs = {}
        if self.stripe_size is not None:
            kwargs["stripe_size"] = self.stripe_size
        return LayoutProblem(sizes, self.targets, workloads, **kwargs)

    def current_layout(self):
        """The live layout implied by the placements so far."""
        problem = self._problem()
        matrix = np.zeros((problem.n_objects, problem.n_targets))
        for i, name in enumerate(problem.object_names):
            placed = self._placed[name]
            total = placed.sum()
            matrix[i] = placed / total if total > 0 else 0.0
        return problem.make_layout(matrix)

    def grow(self, name, delta_bytes):
        """Place ``delta_bytes`` of new capacity for object ``name``.

        The increment goes to the target that minimizes the estimated
        maximum utilization of the resulting layout, among targets with
        free space.  Returns the chosen target index.

        Raises:
            CapacityError: If no target has room for the increment.
        """
        if name not in self._sizes:
            self.set_workload(self._workloads.get(name, ObjectWorkload(name)))

        used = self._used()
        if used.sum() + delta_bytes > self.capacities.sum():
            raise CapacityError(
                "no target has %d bytes free for %s" % (delta_bytes, name)
            )
        self._sizes[name] += int(delta_bytes)
        problem = self._problem()
        evaluator = problem.evaluator()
        index = problem.object_names.index(name)

        base = np.zeros((problem.n_objects, problem.n_targets))
        for i, obj in enumerate(problem.object_names):
            placed = self._placed[obj]
            if obj == name:
                placed = placed.copy()
            total = placed.sum()
            if total > 0:
                base[i] = placed / total

        best_j, best_value = None, None
        for j in range(problem.n_targets):
            if used[j] + delta_bytes > self.capacities[j]:
                continue
            trial_placed = self._placed[name].copy()
            trial_placed[j] += delta_bytes
            trial = base.copy()
            trial[index] = trial_placed / trial_placed.sum()
            value = evaluator.objective(trial)
            if best_value is None or value < best_value:
                best_value = value
                best_j = j
        if best_j is None:
            self._sizes[name] -= int(delta_bytes)
            raise CapacityError(
                "no target has %d bytes free for %s" % (delta_bytes, name)
            )
        self._placed[name][best_j] += delta_bytes
        return best_j

    def drift(self):
        """How far the grown layout is from the advisor's optimum.

        Returns ``(current_max_utilization, optimal_max_utilization)``;
        their ratio is the payoff a relocation pass would buy.
        """
        problem = self._problem()
        evaluator = problem.evaluator()
        current = evaluator.objective(self.current_layout().matrix)
        optimal = LayoutAdvisor(problem, regular=False).recommend()
        return current, float(optimal.utilizations["solver"].max())

    def reoptimize(self, regular=True):
        """Full advisor pass over the current objects (relocation plan)."""
        return LayoutAdvisor(self._problem(), regular=regular).recommend()
