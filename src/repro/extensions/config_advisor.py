"""Storage configuration advisor (the paper's §8 future work).

"Instead of taking a set of storage targets as input, the advisor would
instead take a description of the available unconfigured storage
resources ... recommend how to configure specific storage targets, e.g.
RAID groups, from the available resources, as well as how to lay out
objects onto the targets."

Given a pool of identical raw disks (plus optional fixed targets such
as an SSD), the :class:`ConfigurationAdvisor` enumerates the ways to
partition the disks into RAID0 groups, runs the layout advisor on each
candidate configuration, and returns the configuration + layout pair
with the lowest maximum estimated utilization — the same objective the
layout advisor minimizes, now searched over configurations too.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.advisor import LayoutAdvisor
from repro.core.problem import LayoutProblem, TargetSpec
from repro.errors import SolverError


def _partitions(n):
    """All multisets of positive integers summing to ``n``, descending.

    These are the ways to group ``n`` identical disks into RAID0 sets:
    for n=4 → [4], [3,1], [2,2], [2,1,1], [1,1,1,1] — exactly the
    configuration space of the paper's §6.4 experiments.
    """
    def generate(remaining, maximum):
        if remaining == 0:
            yield []
            return
        for first in range(min(remaining, maximum), 0, -1):
            for rest in generate(remaining - first, first):
                yield [first] + rest

    return list(generate(n, n))


def enumerate_configurations(n_disks, max_groups=None):
    """The candidate RAID0 groupings of ``n_disks`` identical disks."""
    candidates = _partitions(n_disks)
    if max_groups is not None:
        candidates = [c for c in candidates if len(c) <= max_groups]
    return candidates


@dataclass
class ConfigurationResult:
    """Best configuration found, with per-candidate diagnostics.

    Attributes:
        grouping: Disk counts per RAID0 group, e.g. ``[3, 1]``.
        advisor_result: The winning configuration's AdvisorResult.
        objective: Its maximum estimated utilization.
        candidates: ``(grouping, objective)`` for every evaluated
            configuration, for reporting.
    """

    grouping: List[int]
    advisor_result: object
    objective: float
    candidates: List[tuple] = field(default_factory=list)


class ConfigurationAdvisor:
    """Searches RAID groupings with the layout advisor as the oracle.

    Args:
        object_sizes: Mapping of object name to size in bytes.
        workloads: Per-object workload descriptions.
        disk_capacity: Capacity of each raw disk.
        n_disks: Number of identical raw disks in the pool.
        target_model_factory: Callable ``(name, n_members) ->
            TargetModel`` producing a cost model for a RAID0 group of
            that width (1 = a plain disk).  Calibrated or analytic
            models both work.
        fixed_targets: Extra pre-configured targets (e.g. an SSD) that
            participate in every candidate configuration.
        stripe_size: LVM stripe size for the layout model.
        max_groups: Optional cap on the number of targets.
    """

    def __init__(self, object_sizes, workloads, disk_capacity, n_disks,
                 target_model_factory, fixed_targets=(), stripe_size=None,
                 max_groups=None):
        self.object_sizes = dict(object_sizes)
        self.workloads = list(workloads)
        self.disk_capacity = int(disk_capacity)
        self.n_disks = int(n_disks)
        self.target_model_factory = target_model_factory
        self.fixed_targets = list(fixed_targets)
        self.stripe_size = stripe_size
        self.max_groups = max_groups

    def _targets_for(self, grouping):
        targets = []
        for index, members in enumerate(grouping):
            name = "raid%dx%d" % (index, members) if members > 1 \
                else "disk%d" % index
            targets.append(TargetSpec(
                name=name,
                capacity=self.disk_capacity * members,
                model=self.target_model_factory(name, members),
            ))
        return targets + list(self.fixed_targets)

    def recommend(self, regular=True, restarts=1):
        """Evaluate every candidate grouping; return the best.

        Raises:
            SolverError: If no candidate configuration admits a layout.
        """
        best = None
        candidates = []
        for grouping in enumerate_configurations(self.n_disks,
                                                 self.max_groups):
            targets = self._targets_for(grouping)
            kwargs = {}
            if self.stripe_size is not None:
                kwargs["stripe_size"] = self.stripe_size
            try:
                problem = LayoutProblem(
                    self.object_sizes, targets, self.workloads, **kwargs
                )
                outcome = LayoutAdvisor(
                    problem, regular=regular, restarts=restarts
                ).recommend()
            except Exception:
                continue
            objective = outcome.max_utilization(
                "regular" if regular else "solver"
            )
            candidates.append((grouping, objective))
            if best is None or objective < best.objective:
                best = ConfigurationResult(
                    grouping=grouping,
                    advisor_result=outcome,
                    objective=objective,
                )
        if best is None:
            raise SolverError("no disk grouping admitted a valid layout")
        best.candidates = candidates
        return best
