"""Extensions beyond the paper's §6 evaluation.

The paper's conclusion sketches two directions: using layout
recommendations to steer *dynamic* placement (FlexVol-style growth) and
extending the advisor to recommend **storage configurations** — how to
group raw devices into RAID targets — in addition to layouts, moving it
toward tools like Minerva and DAD.  This subpackage implements both as
thin layers over the core advisor.
"""

from repro.extensions.config_advisor import (
    ConfigurationAdvisor,
    ConfigurationResult,
    enumerate_configurations,
)
from repro.extensions.dynamic import DynamicPlacer

__all__ = [
    "ConfigurationAdvisor",
    "ConfigurationResult",
    "enumerate_configurations",
    "DynamicPlacer",
]
