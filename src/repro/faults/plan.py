"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` — *what
goes wrong, where, when*.  Plans are plain data: they serialize to JSON
(so a chaos scenario can be committed next to a benchmark), and the
:meth:`FaultPlan.random` generator derives a schedule entirely from a
seed, so the same seed always produces the identical fault schedule —
the property that makes chaos runs reproducible and bisectable.

The plan says nothing about *how* faults are applied; that is the
:class:`~repro.faults.injector.FaultInjector`'s job.
"""

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError

#: Fault kinds a plan may contain.  Target faults name a target;
#: ``solver-stall`` and ``crash`` are infrastructure faults consumed by
#: the solver watchdog and the crash/resume harnesses respectively.
TARGET_KINDS = ("fail-stop", "stall", "degrade", "capacity-loss", "repair")
GLOBAL_KINDS = ("solver-stall", "crash")
KINDS = TARGET_KINDS + GLOBAL_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: Simulated seconds at which the fault strikes.
        kind: One of :data:`KINDS`.
        target: Target name for target faults (None for global kinds).
        duration_s: Stall-window length (``stall``), degradation
            duration (``degrade``; 0 means permanent until repair), or
            injected solve delay (``solver-stall``).
        service_scale: Service-time multiplier for ``degrade`` (2.0 =
            half speed).
        capacity_factor: Usable-capacity multiplier for
            ``capacity-loss`` (0.5 = half the capacity survives).
    """

    time: float
    kind: str
    target: str = None
    duration_s: float = 0.0
    service_scale: float = 1.0
    capacity_factor: float = 1.0

    def validate(self, target_names=None):
        if self.kind not in KINDS:
            raise FaultError("unknown fault kind %r" % self.kind)
        if self.time < 0:
            raise FaultError("fault time must be non-negative")
        if self.kind in TARGET_KINDS:
            if not self.target:
                raise FaultError("%s fault needs a target" % self.kind)
            if target_names is not None and self.target not in target_names:
                raise FaultError(
                    "fault targets unknown target %r" % self.target
                )
        if self.kind == "stall" and self.duration_s <= 0:
            raise FaultError("stall needs a positive duration")
        if self.kind == "degrade" and self.service_scale <= 0:
            raise FaultError("degrade needs a positive service scale")
        if self.kind == "capacity-loss" and not 0 <= self.capacity_factor <= 1:
            raise FaultError("capacity factor must be in [0, 1]")
        if self.kind == "solver-stall" and self.duration_s <= 0:
            raise FaultError("solver-stall needs a positive duration")

    def as_payload(self):
        """Compact dict form (defaults omitted) for JSON/event logs."""
        payload = {"time": self.time, "kind": self.kind}
        if self.target is not None:
            payload["target"] = self.target
        if self.duration_s:
            payload["duration_s"] = self.duration_s
        if self.service_scale != 1.0:
            payload["service_scale"] = self.service_scale
        if self.capacity_factor != 1.0:
            payload["capacity_factor"] = self.capacity_factor
        return payload


@dataclass
class FaultPlan:
    """An ordered fault schedule.

    Args:
        events: The fault events; stored sorted by (time, authored
            order) so injection order is total and deterministic.
    """

    events: list = field(default_factory=list)

    def __post_init__(self):
        events = list(self.events)
        for event in events:
            event.validate()
        self.events = sorted(
            events, key=lambda e: (e.time, events.index(e))
        )

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate_targets(self, target_names):
        """Raise :class:`FaultError` on events naming unknown targets."""
        names = set(target_names)
        for event in self.events:
            event.validate(target_names=names)
        return self

    @property
    def target_events(self):
        return [e for e in self.events if e.kind in TARGET_KINDS]

    @property
    def solver_stalls(self):
        return [e for e in self.events if e.kind == "solver-stall"]

    @property
    def crashes(self):
        return [e for e in self.events if e.kind == "crash"]

    def signature(self):
        """Canonical tuple of the schedule; equal iff plans are equal.

        Two plans built from the same seed must compare equal through
        this — the determinism contract chaos tests assert.
        """
        return tuple(
            (round(e.time, 9), e.kind, e.target, round(e.duration_s, 9),
             round(e.service_scale, 9), round(e.capacity_factor, 9))
            for e in self.events
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self):
        return {"faults": [e.as_payload() for e in self.events]}

    @classmethod
    def from_payload(cls, data):
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultError('a fault plan needs a top-level "faults" list')
        entries = data["faults"]
        if not isinstance(entries, list):
            raise FaultError('"faults" must be a list of events')
        events = []
        for entry in entries:
            try:
                events.append(FaultEvent(**entry))
            except TypeError as error:
                raise FaultError("bad fault entry %r: %s" % (entry, error))
        return cls(events)

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise FaultError("fault plan %s is not valid JSON: %s"
                                 % (path, error))
        return cls.from_payload(data)

    # ------------------------------------------------------------------
    # Seeded chaos generation
    # ------------------------------------------------------------------

    @classmethod
    def random(cls, seed, target_names, horizon_s, n_faults=3,
               kinds=("fail-stop", "stall", "degrade", "capacity-loss"),
               repair=True):
        """Derive a fault schedule deterministically from ``seed``.

        Faults strike in the middle 80% of the horizon (so the run
        first reaches steady state and the recovery is observable), at
        most one fail-stop per target; with ``repair=True`` every
        fail-stop is followed by a repair before the horizon ends when
        room allows.
        """
        if not target_names:
            raise FaultError("chaos generation needs at least one target")
        rng = np.random.default_rng(int(seed))
        t0, t1 = 0.1 * horizon_s, 0.9 * horizon_s
        events = []
        dead = set()
        for _ in range(int(n_faults)):
            kind = kinds[int(rng.integers(0, len(kinds)))]
            target = target_names[int(rng.integers(0, len(target_names)))]
            time = float(np.round(t0 + (t1 - t0) * rng.random(), 3))
            if kind == "fail-stop":
                if target in dead:
                    continue
                dead.add(target)
                events.append(FaultEvent(time=time, kind="fail-stop",
                                         target=target))
                if repair and time + 0.2 * horizon_s < horizon_s:
                    events.append(FaultEvent(
                        time=float(np.round(time + 0.15 * horizon_s, 3)),
                        kind="repair", target=target,
                    ))
            elif kind == "stall":
                events.append(FaultEvent(
                    time=time, kind="stall", target=target,
                    duration_s=float(np.round(0.02 * horizon_s
                                              * (1 + rng.random()), 3)),
                ))
            elif kind == "degrade":
                events.append(FaultEvent(
                    time=time, kind="degrade", target=target,
                    service_scale=float(np.round(1.5 + 2.5 * rng.random(), 3)),
                    duration_s=float(np.round(0.2 * horizon_s, 3)),
                ))
            elif kind == "capacity-loss":
                events.append(FaultEvent(
                    time=time, kind="capacity-loss", target=target,
                    capacity_factor=float(np.round(0.3 + 0.4 * rng.random(), 3)),
                ))
            else:
                raise FaultError("cannot generate fault kind %r" % kind)
        return cls(events)
