"""Applies a fault plan to a running system.

The :class:`FaultInjector` is the bridge between a declarative
:class:`~repro.faults.plan.FaultPlan` and the things that can actually
break: live :class:`~repro.storage.target.StorageTarget` objects in a
simulation, the per-target health map the online controller's
emergency path consults, and (through :meth:`solver_hook`) the solver
watchdog.

Two driving modes share all the bookkeeping:

* **live** — :meth:`arm` schedules each fault on the simulation engine
  at its planned time, so faults strike mid-simulation exactly like a
  device dying under load;
* **replay** — :meth:`pop_due` applies every fault whose time has been
  reached, for trace-driven ``OnlineController.replay`` runs where no
  engine is ticking.

Either way, every applied event updates the health map and notifies the
registered listeners (typically a
:class:`~repro.faults.detector.FailureDetector`), and transient faults
(stall windows, bounded degradations) schedule their own clearing so
the health map recovers without a repair event.
"""

from dataclasses import dataclass

import time as _time

from repro.faults.plan import FaultEvent, TARGET_KINDS
from repro.obs import ensure_obs


@dataclass
class TargetHealth:
    """The injector's view of one target's condition.

    Attributes:
        state: ``healthy`` | ``stalled`` | ``degraded`` | ``failed``.
        service_scale: Current service-time multiplier (1.0 = nominal).
        capacity_factor: Fraction of nominal capacity still usable.
        since: Time of the last state change.
    """

    state: str = "healthy"
    service_scale: float = 1.0
    capacity_factor: float = 1.0
    since: float = 0.0

    @property
    def alive(self):
        return self.state != "failed"

    @property
    def healthy(self):
        return (self.state == "healthy" and self.service_scale == 1.0
                and self.capacity_factor == 1.0)


class _Scheduled:
    """One pending injection: an event, or the clearing of one."""

    __slots__ = ("time", "event", "clear")

    def __init__(self, time, event, clear=False):
        self.time = time
        self.event = event
        self.clear = clear


class FaultInjector:
    """Applies a :class:`FaultPlan` to targets and a health map.

    Args:
        plan: The fault schedule.
        targets: Optional live :class:`StorageTarget` sequence; when
            given, target faults are applied to the simulator (fail,
            stall, degrade) in addition to the health map.
        target_names: Target names for replay mode, where no live
            targets exist; defaults to the live targets' names, or the
            names the plan mentions.
        obs: Optional :class:`~repro.obs.Instrumentation`.
    """

    def __init__(self, plan, targets=(), target_names=None, obs=None):
        self.plan = plan
        self._targets = {t.name: t for t in targets}
        if target_names is not None:
            names = list(target_names)
        elif self._targets:
            names = list(self._targets)
        else:
            names = sorted({e.target for e in plan.target_events})
        if names:
            plan.validate_targets(names)
        self.health = {name: TargetHealth() for name in names}
        self._listeners = []
        self._pending = self._expand(plan)
        self._solver_stalls = list(plan.solver_stalls)
        self.injected = 0
        self.obs = ensure_obs(obs)

    @staticmethod
    def _expand(plan):
        """Plan events plus synthetic clears for transient faults."""
        pending = []
        for event in plan.events:
            if event.kind == "solver-stall":
                continue  # consumed by solver_hook, not the timeline
            pending.append(_Scheduled(event.time, event))
            if event.kind == "stall":
                pending.append(
                    _Scheduled(event.time + event.duration_s, event, clear=True)
                )
            elif event.kind == "degrade" and event.duration_s > 0 \
                    and event.service_scale != 1.0:
                pending.append(
                    _Scheduled(event.time + event.duration_s, event, clear=True)
                )
        pending.sort(key=lambda s: (s.time, s.clear))
        return pending

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------

    def add_listener(self, callback):
        """Register ``callback(event, health)`` to run after each
        applied fault (and after each transient fault clears, with a
        synthetic ``repair``-kind event)."""
        self._listeners.append(callback)
        return callback

    def _notify(self, event):
        for callback in self._listeners:
            callback(event, self.health)

    # ------------------------------------------------------------------
    # Driving modes
    # ------------------------------------------------------------------

    def arm(self, engine):
        """Live mode: schedule every pending fault on ``engine``."""
        for entry in self._pending:
            delay = entry.time - engine.now
            if delay < 0:
                raise ValueError(
                    "fault at t=%.3f is already in the past" % entry.time
                )
            engine.schedule(delay, self._fire, entry)
        self._pending = []
        return self

    def pop_due(self, now):
        """Replay mode: apply every pending fault with time <= ``now``.

        Returns the list of applied (non-clear) events, oldest first.
        """
        applied = []
        while self._pending and self._pending[0].time <= now:
            entry = self._pending.pop(0)
            if not entry.clear:
                applied.append(entry.event)
            self._fire(entry)
        return applied

    @property
    def exhausted(self):
        return not self._pending

    def alive_targets(self):
        """Names of targets currently not failed."""
        return [name for name, h in self.health.items() if h.alive]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def _fire(self, entry):
        if entry.clear:
            self._clear(entry.event)
        else:
            self._apply(entry.event)

    def _apply(self, event):
        target = self._targets.get(event.target)
        health = self.health.get(event.target)
        if event.kind == "fail-stop":
            if target is not None:
                target.fail()
            health.state = "failed"
            health.since = event.time
        elif event.kind == "repair":
            if target is not None:
                target.repair()
            health.state = "healthy"
            health.service_scale = 1.0
            health.capacity_factor = 1.0
            health.since = event.time
        elif event.kind == "stall":
            if target is not None:
                target.stall(event.duration_s)
            if health.state == "healthy":
                health.state = "stalled"
                health.since = event.time
        elif event.kind == "degrade":
            if target is not None:
                target.degrade(event.service_scale)
            health.service_scale = event.service_scale
            if event.service_scale != 1.0 and health.state == "healthy":
                health.state = "degraded"
            elif event.service_scale == 1.0 and health.state == "degraded":
                health.state = "healthy"
            health.since = event.time
        elif event.kind == "capacity-loss":
            # Capacity loss is a *planning* fault: it shrinks the
            # capacity the solver may use, not the simulated device.
            health.capacity_factor = event.capacity_factor
            health.since = event.time
        elif event.kind == "crash":
            # Consumed by crash/resume harnesses; nothing breaks here.
            pass
        if event.kind in TARGET_KINDS:
            self.injected += 1
            self.obs.metrics.counter("faults.injected", kind=event.kind).inc()
        self._notify(event)

    def _clear(self, event):
        """Undo a transient fault (stall window over, degradation over).

        Live targets clear themselves (the target scheduled its own
        resume; a bounded degrade gets an explicit reset here); this
        mainly returns the *health map* to healthy and tells listeners
        recovery happened, via a synthetic repair-kind event.
        """
        health = self.health.get(event.target)
        cleared = False
        if event.kind == "stall":
            if health.state == "stalled":
                health.state = "healthy"
                health.since = event.time + event.duration_s
                cleared = True
        elif event.kind == "degrade":
            target = self._targets.get(event.target)
            if health.service_scale == event.service_scale:
                if target is not None and not target.failed:
                    target.degrade(1.0)
                health.service_scale = 1.0
                if health.state == "degraded":
                    health.state = "healthy"
                health.since = event.time + event.duration_s
                cleared = True
        if cleared:
            self._notify(FaultEvent(
                time=event.time + event.duration_s, kind="repair",
                target=event.target,
            ))

    # ------------------------------------------------------------------
    # Solver-side chaos
    # ------------------------------------------------------------------

    def solver_hook(self, sleep=_time.sleep):
        """A ``chaos_hook`` for :mod:`repro.core.watchdog`.

        Each call consumes the next planned ``solver-stall`` event (in
        plan order; the event's ``time`` is ordering only) and blocks
        for its ``duration_s`` of wall-clock time — simulating a solve
        that hangs.  Calls beyond the planned stalls return instantly.
        """
        def hook():
            if self._solver_stalls:
                event = self._solver_stalls.pop(0)
                self.obs.metrics.counter("faults.solver_stalls").inc()
                sleep(event.duration_s)
        return hook
