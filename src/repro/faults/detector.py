"""Failure detection policy for the online controller.

The :class:`~repro.faults.injector.FaultInjector` reports *every* fault
event; not all of them warrant tearing up the layout.  A stall window
clears itself; a mild slowdown is cheaper to ride out than to migrate
around.  The :class:`FailureDetector` is the policy layer in between:
it watches the raw event stream and fires ``on_emergency`` only for
conditions that justify bypassing the drift detector's patience and
cooldown gates — target death, a degradation at or past
``degrade_threshold``, or a capacity loss at or below
``capacity_threshold``.
"""

from repro.obs import ensure_obs

#: Emergency classifications handed to ``on_emergency``.
REASON_FAILED = "fail-stop"
REASON_DEGRADED = "degraded"
REASON_CAPACITY = "capacity-loss"


class FailureDetector:
    """Classifies fault events into emergencies and recoveries.

    Register :meth:`observe` as an injector listener.  ``on_emergency``
    fires at most once per target per incident (a target that is
    already being evacuated is not re-reported when it also degrades);
    a repair clears the incident so a later fault on the same target
    reports again.

    Args:
        on_emergency: ``callback(event, health, reason)`` for
            actionable faults.
        on_recovery: ``callback(event, health)`` when a previously
            reported target is repaired.
        degrade_threshold: Service-time scale at or above which a
            degradation is an emergency (slower than this, the target
            is effectively a straggler dragging max utilization).
        capacity_threshold: Capacity factor at or below which a
            capacity loss is an emergency.
        obs: Optional :class:`~repro.obs.Instrumentation`.
    """

    def __init__(self, on_emergency=None, on_recovery=None,
                 degrade_threshold=2.0, capacity_threshold=0.8, obs=None):
        self.on_emergency = on_emergency
        self.on_recovery = on_recovery
        self.degrade_threshold = float(degrade_threshold)
        self.capacity_threshold = float(capacity_threshold)
        self.flagged = {}
        self.emergencies = 0
        self.recoveries = 0
        self.obs = ensure_obs(obs)

    def classify(self, event, health):
        """The emergency reason for this event, or None if benign."""
        if event.kind == "fail-stop":
            return REASON_FAILED
        if (event.kind == "degrade"
                and event.service_scale >= self.degrade_threshold):
            return REASON_DEGRADED
        if (event.kind == "capacity-loss"
                and event.capacity_factor <= self.capacity_threshold):
            return REASON_CAPACITY
        return None

    def observe(self, event, health):
        """Injector listener: classify and dispatch one fault event."""
        if event.kind == "repair":
            if event.target in self.flagged:
                del self.flagged[event.target]
                self.recoveries += 1
                self.obs.metrics.counter("faults.recoveries").inc()
                if self.on_recovery is not None:
                    self.on_recovery(event, health)
            return
        reason = self.classify(event, health)
        if reason is None or event.target in self.flagged:
            return
        self.flagged[event.target] = reason
        self.emergencies += 1
        self.obs.metrics.counter("faults.emergencies", reason=reason).inc()
        if self.on_emergency is not None:
            self.on_emergency(event, health, reason)

    @property
    def failed_targets(self):
        """Targets currently flagged as dead (fail-stop incidents)."""
        return sorted(
            name for name, reason in self.flagged.items()
            if reason == REASON_FAILED
        )
