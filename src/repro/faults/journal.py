"""Crash-safe migration journal.

A migration that dies half-way (process crash, power loss) must be
resumable without re-copying everything and without losing track of
which chunks already landed.  The journal is an append-only JSONL file
with three record kinds:

* ``begin`` — written once, before any data moves: the migration's
  identity (moves, chunk size, schema version) plus an opaque ``meta``
  dict the online controller uses to rebuild its pending-migration
  state (new layout fractions, predicted utilization, accept time);
* ``chunk`` — appended *after* a chunk's destination write completes,
  so a recorded chunk is durable by construction;
* ``commit`` — appended when the placement map is swapped; a journal
  with a commit record needs no recovery at all.

Recovery replays the file: chunks recorded are done, everything else is
(re)copied.  Re-copying a chunk whose record was lost is harmless —
chunk writes are idempotent — which is what makes "crash after any
chunk, resume, same final placement" a provable property rather than a
hope.  Parsing is tolerant of a truncated final line (the one partial
write a crash can leave behind); any other malformed line raises, since
it means the journal itself is corrupt.
"""

import json
import os

from repro.errors import FaultError

VERSION = 1


def _chunk_list(moves, chunk):
    """Split moves into copy chunks exactly like ThrottledMigrator does.

    Returns ``[(source name, destination name, bytes), ...]`` — the
    canonical chunk indexing both the live migrator and a resumed one
    agree on.
    """
    chunks = []
    for move in moves:
        left = int(move["bytes"])
        while left > 0:
            size = min(int(chunk), left)
            chunks.append((move["source"], move["destination"], size))
            left -= size
    return chunks


class MigrationJournal:
    """Append-only chunk journal for one migration.

    Create with :meth:`create` (new migration) or :meth:`load` (crash
    recovery); both leave the file open for appending further records.
    """

    def __init__(self, path, moves, chunk, meta, done, committed,
                 malformed=0):
        self.path = path
        self.moves = moves
        self.chunk = int(chunk)
        self.meta = meta
        self.done = set(done)
        self.committed = committed
        self.malformed = malformed
        self.chunks = _chunk_list(moves, chunk)
        for index in self.done:
            if not 0 <= index < len(self.chunks):
                raise FaultError(
                    "journal %s records chunk %d of %d"
                    % (path, index, len(self.chunks))
                )
        self._handle = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, path, plan, chunk, meta=None):
        """Start a journal for ``plan`` (a MigrationPlan), overwriting
        any stale journal at ``path``."""
        moves = [
            {"obj": m.obj, "source": m.source, "destination": m.destination,
             "bytes": m.bytes}
            for m in plan.moves
        ]
        journal = cls(path, moves, chunk, meta or {}, done=(),
                      committed=False)
        journal._handle = open(path, "w")
        journal._append({
            "kind": "begin", "version": VERSION, "chunk": int(chunk),
            "moves": moves, "meta": journal.meta,
        })
        return journal

    @classmethod
    def load(cls, path):
        """Parse a journal left behind by a crashed migration.

        Tolerates a truncated *final* line; any other malformed line —
        or a missing/garbled begin record — raises :class:`FaultError`.
        """
        with open(path) as handle:
            lines = handle.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records = []
        malformed = 0
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    malformed += 1  # torn final write from the crash
                    continue
                raise FaultError(
                    "journal %s is corrupt at line %d" % (path, position + 1)
                )
        if not records or records[0].get("kind") != "begin":
            raise FaultError("journal %s has no begin record" % path)
        begin = records[0]
        if begin.get("version") != VERSION:
            raise FaultError(
                "journal %s has version %r (expected %d)"
                % (path, begin.get("version"), VERSION)
            )
        done = set()
        committed = False
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "chunk":
                done.add(int(record["index"]))
            elif kind == "commit":
                committed = True
            else:
                raise FaultError(
                    "journal %s has unknown record kind %r" % (path, kind)
                )
        return cls(path, begin["moves"], begin["chunk"], begin.get("meta", {}),
                   done=done, committed=committed, malformed=malformed)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def total_chunks(self):
        return len(self.chunks)

    def remaining(self):
        """Chunk indices still to copy, in order."""
        return [i for i in range(len(self.chunks)) if i not in self.done]

    def matches(self, plan, chunk):
        """True when this journal describes exactly this migration."""
        moves = [
            {"obj": m.obj, "source": m.source, "destination": m.destination,
             "bytes": m.bytes}
            for m in plan.moves
        ]
        return moves == self.moves and int(chunk) == self.chunk

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def _append(self, record):
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_chunk(self, index):
        """Mark chunk ``index`` durable (call after its write lands)."""
        if not 0 <= index < len(self.chunks):
            raise FaultError(
                "chunk index %d out of range (journal has %d chunks)"
                % (index, len(self.chunks))
            )
        if index in self.done:
            return
        self.done.add(index)
        self._append({"kind": "chunk", "index": int(index)})

    def record_commit(self):
        """Mark the migration committed (placement map swapped)."""
        if not self.committed:
            self.committed = True
            self._append({"kind": "commit"})

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None
