"""Fault injection and degraded-mode resilience.

The advisor and the online loop of :mod:`repro.online` assume every
storage target stays healthy and every solve finishes.  This package is
the part of the system that drops that assumption:

* :mod:`repro.faults.plan` — a declarative, seed-deterministic
  :class:`~repro.faults.plan.FaultPlan` (fail-stop target death,
  transient stall windows, latency degradation, capacity loss, solver
  stalls, controller crashes);
* :mod:`repro.faults.injector` — a :class:`~repro.faults.injector.FaultInjector`
  that applies a plan to a live simulation (engine-scheduled) or a
  trace replay (time-polled), maintaining a per-target health map;
* :mod:`repro.faults.detector` — a
  :class:`~repro.faults.detector.FailureDetector` that filters raw
  fault events into the actionable notifications the online
  controller's emergency evacuation path reacts to;
* :mod:`repro.faults.journal` — a chunk-level
  :class:`~repro.faults.journal.MigrationJournal` giving the throttled
  migrator crash-safe, idempotent resume.

The solver-side counterpart — a wall-clock watchdog with a graceful
fallback chain — lives in :mod:`repro.core.watchdog` so the core layer
stays independent of this package; the injector plugs into it through
the plain-callable ``chaos_hook``.
"""

from repro.faults.detector import FailureDetector
from repro.faults.injector import FaultInjector, TargetHealth
from repro.faults.journal import MigrationJournal
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "FailureDetector",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "MigrationJournal",
    "TargetHealth",
]
