"""Per-tenant latency SLOs: objectives, error budgets, burn rates.

The serving layer promises each tenant a latency objective on its
advise requests — "p99 under 2 s, 99% of requests under target".  This
module tracks attainment against that promise over a sliding window of
recent requests, the way an SRE error budget works:

* an :class:`SloObjective` states the targets — a p50 and p99 latency
  bound plus the fraction of requests (``slo_target``) that must land
  under the p99 bound;
* :class:`SloEngine` ingests one observation per completed request
  (from the service's request-completion hook) and answers with
  attainment %, remaining error budget, and burn rate per tenant.

Burn rate follows the standard multiwindow-alerting definition: the
observed breach fraction divided by the *allowed* breach fraction,

    burn_rate = breach_rate / (1 - slo_target)

so 1.0 means the tenant is consuming its error budget exactly as fast
as the objective permits, and 10.0 means ten times too fast (the
budget for the window will be gone in a tenth of the window).  Errors
(HTTP 5xx, solver failures) always count as breaches — a fast failure
is not a met objective.

Everything here is plain in-memory bookkeeping guarded by one lock;
the engine is shared between the asyncio event loop (request hooks)
and exposition readers (``/slo``, ``/metrics``, ``/status``).
"""

import threading
from collections import deque

#: Window size (requests per tenant) the budget is computed over.
DEFAULT_WINDOW = 256


class SloObjective:
    """Latency objective for one tenant's advise requests.

    Args:
        p50_s: Target median latency, seconds.
        p99_s: Target tail latency, seconds — the bound the error
            budget is written against.
        slo_target: Fraction of requests that must finish under
            ``p99_s`` (e.g. ``0.99``).  Must be in (0, 1): a target of
            exactly 1.0 leaves no error budget and makes the burn rate
            undefined.
        window: Sliding-window length in requests.
    """

    __slots__ = ("p50_s", "p99_s", "slo_target", "window")

    def __init__(self, p50_s=1.0, p99_s=5.0, slo_target=0.99,
                 window=DEFAULT_WINDOW):
        p50_s = float(p50_s)
        p99_s = float(p99_s)
        if p50_s <= 0 or p99_s <= 0:
            raise ValueError("latency targets must be positive")
        if p50_s > p99_s:
            raise ValueError("p50 target must not exceed p99 target")
        if not 0.0 < float(slo_target) < 1.0:
            raise ValueError("slo_target must be in (0, 1)")
        if int(window) < 1:
            raise ValueError("window must be at least 1 request")
        self.p50_s = p50_s
        self.p99_s = p99_s
        self.slo_target = float(slo_target)
        self.window = int(window)

    @classmethod
    def from_payload(cls, payload, default=None):
        """Build from a request payload's ``slo`` object, filling
        unspecified fields from ``default`` (another objective)."""
        if payload is None:
            return default if default is not None else cls()
        if not isinstance(payload, dict):
            raise ValueError("slo must be an object")
        base = default if default is not None else cls()
        known = {"p50_s", "p99_s", "slo_target", "window"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                "unknown slo field(s): %s" % ", ".join(sorted(unknown))
            )
        return cls(
            p50_s=payload.get("p50_s", base.p50_s),
            p99_s=payload.get("p99_s", base.p99_s),
            slo_target=payload.get("slo_target", base.slo_target),
            window=payload.get("window", base.window),
        )

    def to_dict(self):
        return {
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "slo_target": self.slo_target,
            "window": self.window,
        }

    def __repr__(self):
        return ("SloObjective(p50_s=%g, p99_s=%g, slo_target=%g, window=%d)"
                % (self.p50_s, self.p99_s, self.slo_target, self.window))


class _TenantSlo:
    """Sliding-window state for one tenant (engine-internal)."""

    __slots__ = ("objective", "samples", "total", "total_breaches",
                 "total_errors", "worst_burn_rate")

    def __init__(self, objective):
        self.objective = objective
        # Each sample: (latency_s, breached, error) — breached already
        # folds errors in, error is kept for separate reporting.
        self.samples = deque(maxlen=objective.window)
        self.total = 0
        self.total_breaches = 0
        self.total_errors = 0
        self.worst_burn_rate = 0.0


def _quantile(sorted_values, q):
    """Nearest-rank quantile of an already-sorted list (None if empty)."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class SloEngine:
    """Tracks every tenant's objective, window, and burn rate.

    Thread-safe: ``observe`` is called from request-completion hooks on
    the event loop, snapshots from exposition readers.
    """

    def __init__(self, default_objective=None):
        self.default_objective = (default_objective if default_objective
                                  is not None else SloObjective())
        self._tenants = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def register(self, tenant_id, objective=None):
        """Start tracking a tenant; idempotent unless the objective
        changes, in which case the window restarts under the new one."""
        objective = (objective if objective is not None
                     else self.default_objective)
        with self._lock:
            current = self._tenants.get(tenant_id)
            if (current is not None
                    and current.objective.to_dict() == objective.to_dict()):
                return current.objective
            self._tenants[tenant_id] = _TenantSlo(objective)
        return objective

    def forget(self, tenant_id):
        with self._lock:
            self._tenants.pop(tenant_id, None)

    # -- durability (serving-layer snapshots) ---------------------------

    def persist_state(self, tenant_id):
        """JSON-safe high-water marks for one tenant (None if unknown).

        The sliding window itself is deliberately not persisted — after
        a restart the window restarts empty — but the lifetime totals
        and the worst observed burn rate survive, so a crash cannot
        launder a tenant's SLO history.
        """
        with self._lock:
            state = self._tenants.get(tenant_id)
            if state is None:
                return None
            return {
                "total": state.total,
                "total_breaches": state.total_breaches,
                "total_errors": state.total_errors,
                "worst_burn_rate": state.worst_burn_rate,
            }

    def restore(self, tenant_id, objective=None, state=None):
        """Re-register a tenant and restore its high-water marks."""
        objective = self.register(tenant_id, objective)
        if state:
            with self._lock:
                tenant = self._tenants[tenant_id]
                tenant.total = int(state.get("total", 0))
                tenant.total_breaches = int(state.get("total_breaches", 0))
                tenant.total_errors = int(state.get("total_errors", 0))
                tenant.worst_burn_rate = float(
                    state.get("worst_burn_rate", 0.0)
                )
        return objective

    def objective_for(self, tenant_id):
        with self._lock:
            state = self._tenants.get(tenant_id)
        return state.objective if state is not None else None

    # -- ingestion ------------------------------------------------------

    def observe(self, tenant_id, latency_s, error=False):
        """Record one completed request.  Unregistered tenants are
        registered on first sight under the default objective (a
        request must never go uncounted)."""
        latency_s = float(latency_s)
        with self._lock:
            state = self._tenants.get(tenant_id)
            if state is None:
                state = _TenantSlo(self.default_objective)
                self._tenants[tenant_id] = state
            breached = bool(error) or latency_s > state.objective.p99_s
            state.samples.append((latency_s, breached, bool(error)))
            state.total += 1
            if breached:
                state.total_breaches += 1
            if error:
                state.total_errors += 1
            burn = self._burn_rate(state)
            if burn > state.worst_burn_rate:
                state.worst_burn_rate = burn
            return breached

    @staticmethod
    def _burn_rate(state):
        samples = state.samples
        if not samples:
            return 0.0
        breach_rate = (sum(1 for _, breached, _ in samples if breached)
                       / len(samples))
        return breach_rate / (1.0 - state.objective.slo_target)

    # -- reporting ------------------------------------------------------

    def snapshot(self, tenant_id):
        """One tenant's SLO standing (None if unknown)."""
        with self._lock:
            state = self._tenants.get(tenant_id)
            if state is None:
                return None
            samples = list(state.samples)
            objective = state.objective
            total = state.total
            total_breaches = state.total_breaches
            total_errors = state.total_errors
            worst = state.worst_burn_rate
        latencies = sorted(s[0] for s in samples)
        breaches = sum(1 for _, breached, _ in samples if breached)
        errors = sum(1 for _, _, error in samples if error)
        window_n = len(samples)
        attainment = ((window_n - breaches) / window_n if window_n
                      else 1.0)
        allowed = 1.0 - objective.slo_target
        burn = (breaches / window_n / allowed) if window_n else 0.0
        # Error budget remaining: 1.0 = untouched, 0.0 = exhausted.
        budget = 1.0 - min(1.0, (breaches / window_n / allowed)
                           if window_n else 0.0)
        return {
            "objective": objective.to_dict(),
            "window_requests": window_n,
            "attainment": attainment,
            "attained": attainment >= objective.slo_target,
            "breaches": breaches,
            "errors": errors,
            "p50_s": _quantile(latencies, 0.50),
            "p99_s": _quantile(latencies, 0.99),
            "p50_met": (_quantile(latencies, 0.50) or 0.0)
            <= objective.p50_s,
            "burn_rate": burn,
            "worst_burn_rate": worst,
            "error_budget_remaining": budget,
            "total_requests": total,
            "total_breaches": total_breaches,
            "total_errors": total_errors,
        }

    def snapshot_all(self):
        """``tenant_id → snapshot`` for every tracked tenant."""
        with self._lock:
            tenant_ids = list(self._tenants)
        report = {}
        for tenant_id in tenant_ids:
            snap = self.snapshot(tenant_id)
            if snap is not None:
                report[tenant_id] = snap
        return report

    def export_to(self, metrics):
        """Mirror the current standing into a MetricsRegistry as
        gauges, so ``/metrics`` exposes SLO state without a second
        exposition path."""
        for tenant_id, snap in self.snapshot_all().items():
            metrics.gauge("repro_slo_attainment_ratio",
                          tenant=tenant_id).set(snap["attainment"])
            metrics.gauge("repro_slo_burn_rate",
                          tenant=tenant_id).set(snap["burn_rate"])
            metrics.gauge("repro_slo_error_budget_remaining",
                          tenant=tenant_id).set(
                              snap["error_budget_remaining"])
            metrics.gauge("repro_slo_objective_p99_seconds",
                          tenant=tenant_id).set(snap["objective"]["p99_s"])
        return metrics

    def __len__(self):
        with self._lock:
            return len(self._tenants)
