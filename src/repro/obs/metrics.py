"""Metrics: counters, gauges, histograms, and sample series.

A :class:`MetricsRegistry` hands out label-scoped instruments memoized
by ``(name, labels)``, so hot paths resolve their instrument once at
setup and pay a bare method call per update.  The disabled counterpart,
:class:`NullRegistry`, hands out shared inert singletons — updating a
null instrument is a no-op method call, and loops that want to pay even
less can guard on ``registry.enabled``.

Instrument semantics follow the Prometheus data model (counters only go
up, histogram buckets are exported cumulatively); :class:`Series` is a
local extension for ordered samples — the solver's per-restart
convergence trajectories — which has no Prometheus equivalent and is
exported only to JSONL.
"""

import json

#: Default histogram buckets, in seconds — spans request service times
#: from SSD hits to overloaded-disk queueing.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels):
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)
        return self.value

    def inc(self, amount=1.0):
        self.value += amount
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum and count.

    Buckets are *upper bounds*; an implicit +Inf bucket catches the
    tail.  Internally counts are per-bucket; export is cumulative, as
    the Prometheus exposition format requires.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self):
        """Per-bucket cumulative counts, +Inf last (== ``count``)."""
        total = 0
        out = []
        for bucket in self.bucket_counts:
            total += bucket
            out.append(total)
        return out

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the q-th sample); None when empty."""
        if not self.count:
            return None
        rank = q * self.count
        for index, cumulative in enumerate(self.cumulative_counts()):
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")


class Series:
    """Ordered structured samples (e.g. a convergence trajectory)."""

    __slots__ = ("points",)
    kind = "series"

    def __init__(self):
        self.points = []

    def record(self, **fields):
        self.points.append(fields)
        return fields

    def __len__(self):
        return len(self.points)

    def field(self, name):
        """One field of every point, in order (missing points skipped)."""
        return [p[name] for p in self.points if name in p]


class MetricsRegistry:
    """Creates and memoizes instruments by ``(name, labels)``."""

    enabled = True

    def __init__(self):
        self._instruments = {}

    def _get(self, factory, kind, name, labels):
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, "gauge", name, labels)

    def histogram(self, name, buckets=DEFAULT_LATENCY_BUCKETS, **labels):
        return self._get(lambda: Histogram(buckets), "histogram", name,
                         labels)

    def series(self, name, **labels):
        return self._get(Series, "series", name, labels)

    # -- inspection -----------------------------------------------------

    def __iter__(self):
        """Yields ``(kind, name, labels_dict, instrument)``."""
        for (kind, name, labels), instrument in self._instruments.items():
            yield kind, name, dict(labels), instrument

    def __len__(self):
        return len(self._instruments)

    def get(self, name, **labels):
        """Look up an existing instrument of any kind, or None."""
        key = _label_key(labels)
        for kind in ("counter", "gauge", "histogram", "series"):
            instrument = self._instruments.get((kind, name, key))
            if instrument is not None:
                return instrument
        return None

    def find(self, name):
        """All ``(labels, instrument)`` pairs registered under a name."""
        return [
            (dict(labels), instrument)
            for (_, n, labels), instrument in self._instruments.items()
            if n == name
        ]

    # -- serialization --------------------------------------------------

    def to_records(self):
        """One JSONL record per instrument."""
        records = []
        for kind, name, labels, instrument in self:
            record = {"type": "metric", "kind": kind, "name": name}
            if labels:
                record["labels"] = labels
            if kind in ("counter", "gauge"):
                record["value"] = instrument.value
            elif kind == "histogram":
                record["buckets"] = list(instrument.bounds)
                record["bucket_counts"] = list(instrument.bucket_counts)
                record["sum"] = instrument.sum
                record["count"] = instrument.count
            else:  # series
                record["points"] = instrument.points
            records.append(record)
        return records

    def to_jsonl(self, path):
        from repro.obs.trace import json_default

        with open(path, "w") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record, default=json_default))
                handle.write("\n")

    @classmethod
    def from_records(cls, records):
        """Rebuild a registry from parsed metric records."""
        registry = cls()
        for record in records:
            if record.get("type") != "metric":
                continue
            labels = record.get("labels", {})
            kind = record["kind"]
            name = record["name"]
            if kind == "counter":
                registry.counter(name, **labels).value = record["value"]
            elif kind == "gauge":
                registry.gauge(name, **labels).value = record["value"]
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, buckets=record["buckets"], **labels
                )
                histogram.bucket_counts = list(record["bucket_counts"])
                histogram.sum = record["sum"]
                histogram.count = record["count"]
            elif kind == "series":
                registry.series(name, **labels).points = list(
                    record["points"]
                )
        return registry

    def merge_records(self, records):
        """Fold another registry's serialized records into this one.

        Used to stitch metrics captured inside a worker process back
        into the parent's registry: counters and gauge values add,
        histogram buckets merge bucket-wise (when the bounds match;
        mismatched bounds fall back to re-observing the remote mean,
        which keeps sum/count exact at bucket-resolution cost), and
        series points are appended in arrival order.
        """
        for record in records:
            if record.get("type") != "metric":
                continue
            labels = record.get("labels", {})
            kind = record["kind"]
            name = record["name"]
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).inc(record["value"])
            elif kind == "histogram":
                histogram = self.histogram(
                    name, buckets=record["buckets"], **labels
                )
                if list(histogram.bounds) == [float(b) for b
                                              in record["buckets"]]:
                    for index, bucket in enumerate(record["bucket_counts"]):
                        histogram.bucket_counts[index] += bucket
                    histogram.sum += record["sum"]
                    histogram.count += record["count"]
                else:
                    count = int(record["count"])
                    mean = record["sum"] / count if count else 0.0
                    for _ in range(count):
                        histogram.observe(mean)
            elif kind == "series":
                self.series(name, **labels).points.extend(record["points"])
        return self

    # -- summary --------------------------------------------------------

    def summary(self):
        """Human-readable table of every instrument."""
        lines = []
        for kind, name, labels, instrument in sorted(
            self, key=lambda row: (row[1], sorted(row[2].items()))
        ):
            label_text = ",".join(
                "%s=%s" % kv for kv in sorted(labels.items())
            )
            display = "%s{%s}" % (name, label_text) if label_text else name
            if kind in ("counter", "gauge"):
                value = instrument.value
                text = ("%d" % value if isinstance(value, int)
                        else "%.6g" % value)
            elif kind == "histogram":
                text = ("count %d  mean %.6g  p95 %.6g"
                        % (instrument.count, instrument.mean,
                           instrument.quantile(0.95) or 0.0))
            else:
                text = "%d points" % len(instrument)
            lines.append("  %-58s %s" % (display, text))
        return "\n".join(lines) if lines else "  (no metrics recorded)"


class _NullInstrument:
    """Shared inert instrument answering every update with a no-op."""

    __slots__ = ()
    kind = "null"
    value = 0
    sum = 0.0
    count = 0
    mean = 0.0
    points = ()
    bounds = ()

    def inc(self, amount=1):
        return 0

    def set(self, value):
        return 0.0

    def observe(self, value):
        return None

    def record(self, **fields):
        return fields

    def cumulative_counts(self):
        return []

    def quantile(self, q):
        return None

    def field(self, name):
        return []

    def __len__(self):
        return 0


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name, **labels):
        return NULL_INSTRUMENT

    def gauge(self, name, **labels):
        return NULL_INSTRUMENT

    def histogram(self, name, buckets=DEFAULT_LATENCY_BUCKETS, **labels):
        return NULL_INSTRUMENT

    def series(self, name, **labels):
        return NULL_INSTRUMENT

    def get(self, name, **labels):
        return None

    def find(self, name):
        return []

    def __iter__(self):
        return iter(())

    def __len__(self):
        return 0

    def to_records(self):
        return []

    def summary(self):
        return "  (metrics disabled)"


NULL_REGISTRY = NullRegistry()
