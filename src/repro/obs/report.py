"""Render a saved trace into a human-readable pipeline report.

``repro.cli report out.jsonl`` calls :func:`render_report` on a trace
written by ``advise --trace`` / ``replay-online --metrics``: stage wall
times with shares, the solver restart portfolio with per-restart
convergence (start → final objective over recorded iterations),
evaluator cache efficiency (probe rows vs full rebuilds, rebinds,
refreshes), online controller activity, and per-target simulator
metrics when present.
"""


def _span_total(spans):
    return sum(s.duration_s for s in spans if s.duration_s is not None)


def _stage_section(trace):
    roots = trace.tracer.find("advise")
    stages = [
        ("initial", trace.tracer.find("advise.initial")),
        ("solve", trace.tracer.find("advise.solve")),
        ("regularize", trace.tracer.find("advise.regularize")),
    ]
    total = _span_total(roots)
    if total <= 0:
        total = sum(_span_total(spans) for _, spans in stages)
    if total <= 0 and not any(spans for _, spans in stages):
        return []
    lines = ["stage times"]
    for name, spans in stages:
        if not spans:
            continue
        stage_s = _span_total(spans)
        share = 100.0 * stage_s / total if total > 0 else 0.0
        lines.append("  %-12s %10.4f s  %5.1f%%  (%d span%s)"
                     % (name, stage_s, share, len(spans),
                        "" if len(spans) == 1 else "s"))
    if roots:
        lines.append("  %-12s %10.4f s" % ("total", total))
        for key in ("n_objects", "n_targets", "method", "restarts"):
            if key in roots[0].tags:
                lines.append("  %-12s %10s" % (key, roots[0].tags[key]))
    return lines


def _restart_section(trace):
    restarts = trace.tracer.find("solver.restart")
    if not restarts:
        return []
    lines = ["solver restarts"]
    for span in restarts:
        tags = span.tags
        objective = tags.get("objective")
        lines.append(
            "  attempt %-3s %-12s %10.4f s  objective %s%s"
            % (tags.get("attempt", "?"), tags.get("method", "?"),
               span.duration_s or 0.0,
               "%.6f" % objective if objective is not None else "?",
               "  (parallel)" if tags.get("parallel") else "")
        )
    return lines


def _convergence_section(trace):
    rows = trace.metrics.find("repro_solver_convergence")
    if not rows:
        return []
    lines = ["convergence (per restart)"]
    for labels, series in sorted(
        rows, key=lambda item: str(item[0].get("attempt", ""))
    ):
        objectives = series.field("objective")
        if not objectives:
            continue
        iterations = series.field("iteration")
        accepted = sum(1 for p in series.points if p.get("accepted"))
        lines.append(
            "  attempt %-3s %-12s %4d points  %4d accepted moves  "
            "objective %.6f -> %.6f"
            % (labels.get("attempt", "?"), labels.get("method", "?"),
               len(series), accepted, objectives[0], objectives[-1])
        )
        if iterations:
            lines[-1] += "  (%s iterations)" % iterations[-1]
    return lines


def _counter_value(trace, name):
    rows = trace.metrics.find(name)
    return sum(instrument.value for _, instrument in rows)


def _evaluator_section(trace):
    probes = _counter_value(trace, "repro_evaluator_probe_rows_total")
    full = _counter_value(trace, "repro_evaluator_full_evaluations_total")
    if probes == 0 and full == 0:
        return []
    total = probes + full
    hit_rate = probes / total if total else 0.0
    lines = ["evaluator cache"]
    lines.append("  probe rows (incremental) %10d" % probes)
    lines.append("  full (N, M) rebuilds     %10d" % full)
    lines.append("  cache hit rate           %13.1f%%" % (100.0 * hit_rate))
    lines.append("  commits                  %10d"
                 % _counter_value(trace, "repro_evaluator_commits_total"))
    lines.append("  rebinds                  %10d"
                 % _counter_value(trace, "repro_evaluator_rebinds_total"))
    lines.append("  refreshes                %10d"
                 % _counter_value(trace, "repro_evaluator_refreshes_total"))
    return lines


def _objective_section(trace):
    rows = trace.metrics.find("repro_advise_objective")
    if not rows:
        return []
    order = {"see": 0, "initial": 1, "solver": 2, "regular": 3}
    lines = ["objective (max target utilization)"]
    for labels, gauge in sorted(
        rows, key=lambda item: order.get(item[0].get("stage", ""), 9)
    ):
        lines.append("  after %-10s %10.4f"
                     % (labels.get("stage", "?"), gauge.value))
    return lines


def _online_section(trace):
    rows = trace.metrics.find("repro_online_events_total")
    if not rows:
        return []
    lines = ["online controller"]
    for labels, counter in sorted(rows, key=lambda item: str(item[0])):
        lines.append("  events %-16s %8d"
                     % (labels.get("kind", "?"), counter.value))
    resolves = trace.metrics.find("repro_online_resolves_total")
    for labels, counter in sorted(resolves, key=lambda item: str(item[0])):
        lines.append("  resolves %-14s %8d"
                     % (labels.get("decision", "?"), counter.value))
    moved = _counter_value(trace, "repro_migration_bytes_total")
    if moved:
        lines.append("  migrated bytes         %12d  (%.1f MiB)"
                     % (moved, moved / (1 << 20)))
    return lines


def _sim_section(trace):
    rows = trace.metrics.find("repro_sim_request_latency_seconds")
    if not rows:
        return []
    lines = ["simulator (per target)"]
    utilization = {
        labels.get("target"): gauge.value
        for labels, gauge in trace.metrics.find("repro_sim_utilization")
    }
    for labels, histogram in sorted(
        rows, key=lambda item: str(item[0].get("target", ""))
    ):
        target = labels.get("target", "?")
        util = utilization.get(target)
        lines.append(
            "  %-16s %8d requests  latency mean %8.5f s  p95 %8.5f s%s"
            % (target, histogram.count, histogram.mean,
               histogram.quantile(0.95) or 0.0,
               "  util %.3f" % util if util is not None else "")
        )
    return lines


def render_matrix_report(results):
    """Render a scenario-matrix results dict as a comparison table.

    ``results`` is the output of
    :func:`repro.scenarios.matrix.run_matrix`.  One row per cell;
    ``util frozen`` is the initial layout scored against the final
    quarter of the scenario, ``util end`` the layout the controller
    actually ended with — their gap is what adaptation bought.
    """
    lines = [
        "scenario matrix %r  (%d ok, %d failed, %.1f s)"
        % (results.get("matrix", "?"), results.get("ok", 0),
           results.get("errors", 0), results.get("elapsed_s", 0.0)),
        "",
        "  %-24s %-10s %8s %4s %5s %9s %7s %7s %7s %8s"
        % ("scenario", "controller", "records", "rs", "migr",
           "moved-MiB", "base", "frozen", "end", "p99-ms"),
    ]
    for cell in results.get("cells", []):
        if cell.get("status") != "ok":
            lines.append("  %-24s %-10s ERROR %s"
                         % (cell.get("scenario", "?"),
                            cell.get("controller", "?"),
                            cell.get("error", "")))
            continue
        lines.append(
            "  %-24s %-10s %8d %4d %5d %9.1f %7.4f %7.4f %7.4f %8.2f"
            % (cell["scenario"], cell["controller"], cell["records"],
               cell["resolves"], cell["migrations"],
               cell["bytes_moved"] / (1 << 20), cell["util_baseline"],
               cell["util_end_frozen"], cell["util_end"],
               cell["latency_p99_ms"])
        )
    return "\n".join(lines)


def render_request_trace(trace, max_depth=None):
    """Render one stitched serve-layer request trace as text.

    ``trace`` is a :class:`~repro.obs.export.TraceData` loaded by
    :func:`~repro.obs.export.read_request_trace`: the request summary
    (route, tenant, status, where the latency went) followed by the
    full cross-process span tree.  Spans recorded in worker processes
    carry a ``pid`` tag, so the process hops are visible inline; spans
    still open when the trace was captured render as ``…running``.
    """
    meta = trace.meta
    lines = ["request %s" % meta.get("trace_id", "?")]
    for key in ("route", "tenant", "status", "error", "rung"):
        value = meta.get(key)
        if value not in (None, ""):
            lines.append("  %-12s %s" % (key, value))
    duration = meta.get("duration_s")
    if duration is not None:
        lines.append("  %-12s %10.4f s" % ("duration", duration))
        for key, label in (("queue_wait_s", "queue wait"),
                           ("solve_s", "solve")):
            value = meta.get(key)
            if value is None:
                continue
            share = 100.0 * value / duration if duration > 0 else 0.0
            lines.append("  %-12s %10.4f s  %5.1f%%"
                         % (label, value, share))
    pids = meta.get("worker_pids") or []
    if pids:
        lines.append("  %-12s %s" % (
            "processes",
            "1 local + %d worker (pid %s)"
            % (len(pids), ", ".join(str(p) for p in pids)),
        ))
    sections = [lines]
    if trace.tracer.spans:
        sections.append(
            ["span tree"]
            + ["  " + line for line in
               trace.tracer.render_tree(max_depth=max_depth).splitlines()]
        )
    else:
        sections.append(["span tree", "  (no spans recorded)"])
    return "\n\n".join("\n".join(section) for section in sections)


def render_report(trace, tree=False, max_depth=3):
    """Render one saved :class:`~repro.obs.export.TraceData` as text."""
    sections = []
    meta = {k: v for k, v in trace.meta.items()
            if k not in ("type", "format")}
    if meta:
        sections.append(["trace"] + [
            "  %-12s %s" % (key, value)
            for key, value in sorted(meta.items())
        ])
    for section in (
        _stage_section(trace),
        _restart_section(trace),
        _convergence_section(trace),
        _evaluator_section(trace),
        _objective_section(trace),
        _online_section(trace),
        _sim_section(trace),
    ):
        if section:
            sections.append(section)
    if tree and trace.tracer.spans:
        sections.append(
            ["span tree"]
            + ["  " + line for line in
               trace.tracer.render_tree(max_depth=max_depth).splitlines()]
        )
    if not sections:
        return "empty trace: no spans or metrics recorded"
    return "\n\n".join("\n".join(section) for section in sections)
