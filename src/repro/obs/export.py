"""Exporters: unified JSONL traces and Prometheus text exposition.

One trace file carries the whole observability state of a run — a meta
header line, every span, and every metric — as JSON-lines, so a single
``--trace out.jsonl`` flag captures enough to reconstruct the span tree
*and* the cache/convergence metrics afterwards (``repro.cli report``).

The Prometheus writer emits the text exposition format (``# TYPE``
headers, ``name{label="value"} value`` samples, cumulative
``_bucket``/``_sum``/``_count`` triples for histograms) for scraping or
for pushing through a textfile collector.  Series instruments are a
local extension with no Prometheus equivalent and are skipped there.
"""

import json

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, json_default as _json_default

#: Format version stamped into the meta line of every trace file.
TRACE_FORMAT = 1


class TraceData:
    """A trace file read back: spans, metrics, and the meta header."""

    def __init__(self, tracer, metrics, meta=None):
        self.tracer = tracer
        self.metrics = metrics
        self.meta = meta or {}

    @property
    def spans(self):
        return self.tracer.spans


def trace_records(instrumentation, meta=None):
    """Every JSONL record of one instrumented run, meta line first."""
    header = {"type": "meta", "format": TRACE_FORMAT}
    if meta:
        header.update(meta)
    records = [header]
    records.extend(instrumentation.tracer.to_records())
    records.extend(instrumentation.metrics.to_records())
    return records


def write_trace(path, instrumentation, meta=None):
    """Write spans + metrics as one JSONL trace file."""
    with open(path, "w") as handle:
        for record in trace_records(instrumentation, meta=meta):
            handle.write(json.dumps(record, default=_json_default))
            handle.write("\n")
    return path


def read_trace(path):
    """Load a JSONL trace file into a :class:`TraceData`.

    Raises :class:`~repro.errors.ReproError` when a line is not a JSON
    object — the file is not (or no longer) an instrumentation trace —
    so CLI callers report one clean error instead of a traceback.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ReproError(
                    "%s:%d: not an instrumentation trace record"
                    % (path, number)
                )
            records.append(record)
    meta = {}
    for record in records:
        if record.get("type") == "meta":
            meta = record
            break
    return TraceData(
        Tracer.from_records(records),
        MetricsRegistry.from_records(records),
        meta=meta,
    )


def read_request_trace(path):
    """Load one stitched serve-layer request trace into a
    :class:`TraceData`.

    Accepts either shape the serving layer emits:

    * the JSON payload of ``GET /debug/traces/{trace_id}`` saved to a
      file — one object with the request summary plus a ``"spans"``
      list;
    * JSONL records as written by
      :meth:`~repro.serve.tracing.RequestTrace.to_records` — a
      ``type == "request"`` meta line followed by span records.

    Raises :class:`~repro.errors.ReproError` when neither shape fits,
    so ``repro.cli report --request-trace`` reports one clean error.
    """
    with open(path) as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and isinstance(payload.get("spans"), list):
        meta = {key: value for key, value in payload.items()
                if key != "spans"}
        records = payload["spans"]
    else:
        meta = {}
        records = []
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    "%s:%d: not a request-trace record (%s)"
                    % (path, number, error)
                ) from None
            if not isinstance(record, dict):
                raise ReproError(
                    "%s:%d: not a request-trace record" % (path, number)
                )
            if record.get("type") == "request" and not meta:
                meta = record
            else:
                records.append(record)
        if not meta:
            raise ReproError(
                '%s: no request record (type == "request") — is this a '
                "request trace?" % path
            )
    return TraceData(
        Tracer.from_records(records),
        MetricsRegistry.from_records(records),
        meta=meta,
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value):
    return (str(value)
            .replace("\\", "\\\\")
            .replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _label_text(labels, extra=None):
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        '%s="%s"' % (key, _escape_label_value(value))
        for key, value in sorted(items.items())
    )
    return "{%s}" % body


def _format_value(value):
    """One sample value in exposition syntax.

    Strict parsers accept only ``+Inf`` / ``-Inf`` / ``NaN`` for the
    non-finite floats — Python's ``repr`` spellings (``inf``, ``-inf``,
    ``nan``) are rejected — so the three specials are mapped explicitly.
    """
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def prometheus_text(metrics, extra_labels=None):
    """Render a registry in the Prometheus text exposition format.

    ``extra_labels`` are appended to every sample (the serving layer
    stamps ``tenant="..."`` this way).
    """
    return prometheus_text_multi([(extra_labels or {}, metrics)])


def prometheus_text_multi(sections):
    """Render several registries as one valid exposition document.

    Args:
        sections: Iterable of ``(extra_labels, registry)`` pairs.  Each
            registry's samples get its extra labels; samples of the
            same metric name from different sections are grouped under
            a single ``# TYPE`` header, as the exposition format
            requires (the multi-tenant ``/metrics`` endpoint renders
            one section per tenant plus one for the service itself).
    """
    by_name = {}
    for extra, metrics in sections:
        for kind, name, labels, instrument in metrics:
            if kind == "series":
                continue
            merged = dict(labels)
            if extra:
                merged.update(extra)
            by_name.setdefault((name, kind), []).append((merged, instrument))

    lines = []
    for (name, kind), rows in sorted(by_name.items()):
        lines.append("# TYPE %s %s" % (name, kind))
        for labels, instrument in rows:
            if kind in ("counter", "gauge"):
                lines.append("%s%s %s" % (
                    name, _label_text(labels),
                    _format_value(instrument.value),
                ))
            else:  # histogram
                cumulative = instrument.cumulative_counts()
                bounds = list(instrument.bounds) + [float("inf")]
                for bound, count in zip(bounds, cumulative):
                    lines.append("%s_bucket%s %d" % (
                        name,
                        _label_text(labels, {"le": _format_value(bound)}),
                        count,
                    ))
                lines.append("%s_sum%s %s" % (
                    name, _label_text(labels),
                    _format_value(instrument.sum),
                ))
                lines.append("%s_count%s %d" % (
                    name, _label_text(labels), instrument.count,
                ))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, metrics):
    """Write the registry as a Prometheus text-format file."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(metrics))
    return path
