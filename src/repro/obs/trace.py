"""Pipeline tracing: nested spans with tags and an injectable clock.

A :class:`Tracer` records *spans* — named intervals with wall-clock
start/end, free-form tags, and a parent id — so a whole advisor run
(initial → solve restarts → coordinate rounds → regularization passes)
serializes as one reconstructable tree.  The clock is injectable, which
keeps span tests deterministic and lets the online controller stamp
spans with *simulated* time.

The disabled counterpart, :class:`NullTracer`, answers every call with
shared no-op singletons: no span objects, no list appends, no clock
reads.  Hot loops can additionally guard on ``tracer.enabled`` to skip
building the keyword arguments altogether — the contract
:mod:`benchmarks.bench_obs_overhead` enforces.
"""

import itertools
import json
import time
import uuid


def json_default(value):
    """Coerce numpy scalars (which reach tags via solver indices) to JSON."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        "Object of type %s is not JSON serializable" % type(value).__name__
    )


class TraceContext:
    """Cross-process trace identity: a trace id plus a parent span id.

    Minted once per external request at HTTP admission, carried through
    the scheduler queue, and pickled into solver-pool jobs and
    partitioned-solver worker tasks, so every span recorded for one
    request — in whichever OS process — shares a single ``trace_id``
    and can be stitched back into one tree.  The wire form is a plain
    dict (:meth:`to_dict`), so job payloads stay picklable and
    JSON-safe without importing this class.
    """

    __slots__ = ("trace_id", "parent_span_id")

    def __init__(self, trace_id, parent_span_id=None):
        self.trace_id = str(trace_id)
        self.parent_span_id = parent_span_id

    @classmethod
    def mint(cls):
        """A fresh root context with a globally unique trace id."""
        return cls(uuid.uuid4().hex[:16])

    def child(self, span):
        """The context a worker acting under ``span`` should carry."""
        return TraceContext(self.trace_id, span.span_id)

    def to_dict(self):
        record = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            record["parent"] = self.parent_span_id
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(record["trace_id"], record.get("parent"))

    def __repr__(self):
        return "TraceContext(%r, parent=%r)" % (self.trace_id,
                                                self.parent_span_id)


class Span:
    """One named, tagged interval in a trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start_s", "end_s", "tags")

    def __init__(self, name, span_id, parent_id=None, start_s=0.0, tags=None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s = None
        self.tags = tags if tags is not None else {}

    @property
    def duration_s(self):
        """Span duration, or None while the span is still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set_tag(self, key, value):
        """Attach (or overwrite) one tag; chainable."""
        self.tags[key] = value
        return self

    def to_record(self):
        """The JSONL record for this span."""
        record = {
            "type": "span",
            "id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.end_s is not None:
            record["end_s"] = self.end_s
            record["duration_s"] = self.end_s - self.start_s
        if self.tags:
            record["tags"] = self.tags
        return record

    @classmethod
    def from_record(cls, record):
        span = cls(
            record["name"], record["id"], record.get("parent"),
            record.get("start_s", 0.0), dict(record.get("tags", {})),
        )
        span.end_s = record.get("end_s")
        return span

    def __repr__(self):
        return "Span(%r, id=%d, parent=%r, duration=%r)" % (
            self.name, self.span_id, self.parent_id, self.duration_s,
        )


class _SpanContext:
    """Context manager that finishes a started span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self.span = span

    def __enter__(self):
        return self.span

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.span.tags.setdefault("error", exc_type.__name__)
        self._tracer.finish(self.span)
        return False


class Tracer:
    """Collects a tree of spans.

    Args:
        clock: Zero-argument callable returning seconds.  Defaults to
            ``time.perf_counter``; tests inject a fake, the online
            controller can inject the simulation clock.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._ids = itertools.count(1)
        self.spans = []
        self._stack = []

    # -- recording ------------------------------------------------------

    def start(self, name, parent=None, detached=False, **tags):
        """Open a span.  The current innermost open span becomes its
        parent unless ``parent`` (a Span, or ``False`` for a root) is
        given.  ``detached=True`` records the span without making it
        the parent of subsequently started spans — for episodes that
        outlive their lexical scope (an online migration, say).
        """
        if parent is None:
            parent_id = self._stack[-1].span_id if self._stack else None
        elif parent is False:
            parent_id = None
        else:
            parent_id = parent.span_id
        span = Span(name, next(self._ids), parent_id, self._clock(),
                    tags or {})
        self.spans.append(span)
        if not detached:
            self._stack.append(span)
        return span

    def finish(self, span, **tags):
        """Close a span (tolerates out-of-order finishes)."""
        if span.end_s is not None:
            return span
        if tags:
            span.tags.update(tags)
        span.end_s = self._clock()
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break
        return span

    def span(self, name, **tags):
        """``with tracer.span("solve", method="slsqp") as s: ...``"""
        return _SpanContext(self, self.start(name, **tags))

    def event(self, name, **tags):
        """Record an instantaneous (zero-duration) span."""
        span = self.start(name, detached=True, **tags)
        span.end_s = span.start_s
        return span

    def add_span(self, name, duration_s, **tags):
        """Record an already-measured span (e.g. a solver restart that
        ran in a worker process and only reported its elapsed time).
        The span is backdated so ``end`` lands at the current clock."""
        now = self._clock()
        span = self.start(name, detached=True, **tags)
        span.start_s = now - float(duration_s)
        span.end_s = now
        return span

    def graft_records(self, records, parent=None, end_at=None):
        """Stitch a remote span tree (serialized by another process)
        into this tracer.

        Span ids are remapped onto this tracer's id sequence (so they
        cannot collide with local spans), parent links inside the batch
        are preserved, and batch roots are attached under ``parent``
        (a local Span) when given.

        Clock skew: a worker process stamps spans with *its own*
        monotonic clock, whose epoch is unrelated to this tracer's.
        With ``end_at`` (a timestamp on this tracer's clock — typically
        the moment the result arrived), the whole remote tree is
        shifted so its latest finished span ends at ``end_at``:
        relative structure inside the worker is preserved exactly, and
        the tree is backdated into the local timeline the same way
        :meth:`add_span` backdates a single duration.  Unfinished
        remote spans stay open.

        Returns the grafted spans, in record order.
        """
        remote = [Span.from_record(r) for r in records
                  if r.get("type") == "span"]
        if not remote:
            return []
        offset = 0.0
        if end_at is not None:
            ends = [s.end_s for s in remote if s.end_s is not None]
            anchor = max(ends) if ends else max(s.start_s for s in remote)
            offset = float(end_at) - anchor
        id_map = {}
        for span in remote:
            id_map[span.span_id] = next(self._ids)
        parent_id = parent.span_id if parent is not None else None
        for span in remote:
            span.span_id = id_map[span.span_id]
            if span.parent_id in id_map:
                span.parent_id = id_map[span.parent_id]
            else:
                span.parent_id = parent_id
            span.start_s += offset
            if span.end_s is not None:
                span.end_s += offset
            self.spans.append(span)
        return remote

    # -- inspection -----------------------------------------------------

    def find(self, name):
        """All spans with this name, in start order."""
        return [s for s in self.spans if s.name == name]

    def tree(self):
        """``(roots, children)``: root spans plus an id → children map."""
        children = {}
        by_id = {s.span_id: s for s in self.spans}
        roots = []
        for span in self.spans:
            if span.parent_id is not None and span.parent_id in by_id:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)
        return roots, children

    def render_tree(self, max_depth=None):
        """Indented text rendering of the span tree."""
        roots, children = self.tree()
        lines = []

        def walk(span, depth):
            if max_depth is not None and depth > max_depth:
                return
            duration = span.duration_s
            label = ("%.6fs" % duration if duration is not None
                     else "…running")
            tags = "".join(
                "  %s=%s" % (k, v) for k, v in sorted(span.tags.items())
                if not isinstance(v, (dict, list))
            )
            lines.append("%s%-28s %s%s"
                         % ("  " * depth, span.name, label, tags))
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)
        return "\n".join(lines)

    # -- serialization --------------------------------------------------

    def to_records(self):
        return [span.to_record() for span in self.spans]

    def to_jsonl(self, path):
        """Write every span as one JSON object per line."""
        with open(path, "w") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record, default=json_default))
                handle.write("\n")

    @classmethod
    def from_records(cls, records):
        """Rebuild a tracer (spans only) from parsed span records."""
        tracer = cls()
        tracer.spans = [Span.from_record(r) for r in records
                        if r.get("type") == "span"]
        if tracer.spans:
            tracer._ids = itertools.count(
                max(s.span_id for s in tracer.spans) + 1
            )
        return tracer


class _NullSpan:
    """Shared inert span: accepts tags, reports nothing."""

    __slots__ = ()
    name = "null"
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    tags = {}

    def set_tag(self, key, value):
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every operation is a shared-singleton no-op."""

    enabled = False
    spans = ()

    def start(self, name, parent=None, detached=False, **tags):
        return NULL_SPAN

    def finish(self, span, **tags):
        return span

    def span(self, name, **tags):
        return _NULL_SPAN_CONTEXT

    def event(self, name, **tags):
        return NULL_SPAN

    def add_span(self, name, duration_s, **tags):
        return NULL_SPAN

    def graft_records(self, records, parent=None, end_at=None):
        return []

    def find(self, name):
        return []

    def tree(self):
        return [], {}

    def render_tree(self, max_depth=None):
        return ""

    def to_records(self):
        return []


NULL_TRACER = NullTracer()
