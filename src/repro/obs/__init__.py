"""Unified instrumentation: tracing, metrics, exporters.

The advisor pipeline, the solver portfolio, the incremental objective
evaluator, the storage simulator, and the online controller all accept
an optional :class:`Instrumentation` bundle — a :class:`Tracer` for
nested wall-clock spans plus a :class:`MetricsRegistry` for counters,
gauges, histograms, and convergence series.  Instrumentation is strictly
opt-in: the default bundle (:data:`NULL_INSTRUMENTATION`) is built from
:class:`NullTracer` / :class:`NullRegistry`, whose operations are
shared-singleton no-ops, so uninstrumented runs pay nothing on the
solver hot path (the contract ``benchmarks/bench_obs_overhead.py``
enforces).

Typical use::

    from repro.obs import Instrumentation
    from repro.obs.export import write_trace

    obs = Instrumentation.on()
    LayoutAdvisor(problem, obs=obs).recommend()
    write_trace("out.jsonl", obs)          # spans + metrics, JSON-lines
    print(obs.summary())                   # human table

then ``python -m repro.cli report out.jsonl`` renders the saved trace.
"""

import time

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    Series,
)
from repro.obs.trace import (
    NullTracer,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
)


class Instrumentation:
    """One tracer + one metrics registry, passed around as ``obs=``."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer=None, metrics=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    @property
    def enabled(self):
        """True when either side actually records anything."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def on(cls, clock=time.perf_counter):
        """A live bundle: real tracer (with ``clock``) + real registry."""
        return cls(Tracer(clock=clock), MetricsRegistry())

    def summary(self):
        """Human-readable dump: span tree plus the metrics table."""
        parts = []
        tree = self.tracer.render_tree()
        if tree:
            parts.append("spans\n" + tree)
        parts.append("metrics\n" + self.metrics.summary())
        return "\n\n".join(parts)


#: The shared disabled bundle every ``obs=None`` call site resolves to.
NULL_INSTRUMENTATION = Instrumentation()


def ensure_obs(obs):
    """Normalize an ``obs=`` argument: None → the null bundle."""
    return obs if obs is not None else NULL_INSTRUMENTATION


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NULL_INSTRUMENTATION",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Series",
    "Span",
    "TraceContext",
    "Tracer",
    "ensure_obs",
]
