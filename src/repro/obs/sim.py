"""Simulator metrics: per-target latency, queue depth, and utilization.

:class:`SimMetricsCollector` rides the simulation engine's existing
completion-observer mechanism — the same hook the online workload
monitor uses — so the simulator needs no new code paths to become
observable.  Each completed request feeds a per-target latency
histogram and request/byte counters; when the collector is bound to the
live :class:`~repro.storage.target.StorageTarget` objects it also
samples their queue depth at every completion, and :meth:`finalize`
captures the end-of-run busy-time utilizations (the paper's *measured*
µ_j, Figure 13's ground truth).

The collector also works offline: feed it archived
:class:`~repro.storage.request.CompletionRecord` lists (``consume``)
to rebuild the latency/byte metrics of a stored trace — what
``repro.cli replay-online --metrics`` does.
"""

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS


class SimMetricsCollector:
    """Feeds simulator activity into a :class:`MetricsRegistry`.

    Args:
        metrics: The registry (a :class:`NullRegistry` makes every
            update a no-op).
        targets: Optional live :class:`StorageTarget` sequence; enables
            queue-depth sampling and :meth:`finalize` utilization
            gauges.
        latency_buckets: Histogram bucket bounds in seconds.
        prefix: Metric-name prefix (default ``repro_sim``).
    """

    def __init__(self, metrics, targets=(), latency_buckets=None,
                 prefix="repro_sim"):
        self.metrics = metrics
        self.prefix = prefix
        self.targets = list(targets)
        self._by_name = {t.name: t for t in self.targets}
        self._buckets = tuple(latency_buckets or DEFAULT_LATENCY_BUCKETS)
        self._latency = {}
        self._queue_depth = {}
        self._requests = {}
        self._bytes = {}
        self._engine = None
        self.observed = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, engine):
        """Register on the engine's completion-observer hook."""
        self._engine = engine
        engine.add_completion_observer(self.observe)
        return self

    def detach(self):
        if self._engine is not None:
            self._engine.remove_completion_observer(self.observe)
            self._engine = None
        return self

    # -- per-completion path --------------------------------------------

    def _latency_histogram(self, target):
        histogram = self._latency.get(target)
        if histogram is None:
            histogram = self.metrics.histogram(
                self.prefix + "_request_latency_seconds",
                buckets=self._buckets, target=target,
            )
            self._latency[target] = histogram
        return histogram

    def observe(self, record):
        """Consume one completion record (observer-hook signature)."""
        self.observed += 1
        target = record.target
        self._latency_histogram(target).observe(
            record.finish_time - record.submit_time
        )
        key = (target, record.kind)
        counter = self._requests.get(key)
        if counter is None:
            counter = self.metrics.counter(
                self.prefix + "_requests_total",
                target=target, kind=record.kind,
            )
            self._requests[key] = counter
            self._bytes[key] = self.metrics.counter(
                self.prefix + "_bytes_total",
                target=target, kind=record.kind,
            )
        counter.inc()
        self._bytes[key].inc(record.size)

        live = self._by_name.get(target)
        if live is not None:
            histogram = self._queue_depth.get(target)
            if histogram is None:
                histogram = self.metrics.histogram(
                    self.prefix + "_queue_depth",
                    buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
                    target=target,
                )
                self._queue_depth[target] = histogram
            histogram.observe(live.queue_depth)

    def consume(self, records):
        """Feed an iterable of archived completion records."""
        for record in records:
            self.observe(record)
        return self

    # -- end-of-run accounting ------------------------------------------

    def finalize(self, elapsed=None):
        """Capture busy-time utilization and totals for bound targets.

        Args:
            elapsed: Simulated seconds the run covered; defaults to the
                attached engine's current time.
        """
        if elapsed is None and self._engine is not None:
            elapsed = self._engine.now
        for target in self.targets:
            self.metrics.gauge(
                self.prefix + "_busy_seconds", target=target.name
            ).set(target.busy_time())
            if elapsed:
                self.metrics.gauge(
                    self.prefix + "_utilization", target=target.name
                ).set(target.utilization(elapsed))
            self.metrics.gauge(
                self.prefix + "_requests_completed", target=target.name
            ).set(target.completed)
        if self._engine is not None:
            self.metrics.gauge(
                self.prefix + "_engine_events_total"
            ).set(self._engine.events_processed)
        return self
